"""Command-line interface: ``repro-hypercube`` / ``python -m repro``.

Subcommands:

- ``list`` -- show registered algorithms and experiments.
- ``tree`` -- build and print one multicast tree and its schedule.
- ``experiment`` -- run a figure reproduction and print its table.
- ``collective`` -- time one collective operation.
- ``stats`` -- replay one multicast fully instrumented (metrics,
  profiling probes, channel rollups) and print/export the telemetry.
- ``faults`` -- sweep delivery time and delivery ratio against the
  number of failed links, oblivious (abort + retry) or repaired
  (fault-aware detour schedules); see docs/FAULTS.md.
- ``sweep`` -- run several figure reproductions under one parallel
  sweep context: shared process pool, shared schedule cache, merged
  telemetry; see docs/PERFORMANCE.md.  ``--journal-dir`` checkpoints
  every completed point; ``--resume`` picks a crashed or interrupted
  run back up bit-identically; ``--watchdog`` arms hung-worker
  detection (see docs/RESILIENCE.md).  ``--fabric-port`` distributes
  the points over TCP worker hosts instead of the local pool (the
  sweep degrades back to the local pool if every worker dies).
- ``worker`` -- serve one sweep-fabric worker link: connect to a
  coordinator started with ``sweep --fabric-port``, execute its
  chunks, heartbeat, exit on shutdown.  Exits ``0`` on an orderly
  fleet shutdown, ``1`` when no coordinator is reachable or the link
  drops while idle, and -- beyond the standard contract -- ``70``
  when the coordinator vanishes mid-chunk (the chunk is orphaned, so
  supervisors can tell lost work from a finished fleet).
- ``cache`` -- ``verify`` (audit a schedule-cache directory for
  corrupt/stale entries, optionally ``--repair``-quarantining them)
  and ``gc`` (drop quarantined entries and stray temp files).
- ``trace`` -- run experiments under the span tracer and export the
  timeline as Chrome trace-event JSON (loadable in Perfetto /
  ``chrome://tracing``), optionally with a Prometheus text dump of the
  metrics registry; see docs/TRACING.md.
- ``bench`` -- run the curated benchmark suite, append one entry to the
  committed ``benchmarks/BENCH_<host-class>.json`` ledger, and exit 1
  when any benchmark regresses beyond the threshold vs the previous
  entry; see docs/TRACING.md.
- ``serve`` -- run the schedule-planning HTTP service (coalescing,
  admission control, graceful drain on SIGTERM); see docs/SERVICE.md.
  Drive it with ``python -m repro.service.loadgen``.
- ``lint`` -- run the project-invariant static analysis (determinism,
  timing/async/exception hygiene, exit-code and telemetry-naming
  contracts) over the tree; ``0`` clean, ``1`` findings, ``2`` for
  usage errors or a corrupt baseline.  ``--update-baseline`` rewrites
  the committed grandfather file; see docs/STATIC_ANALYSIS.md.

``experiment``, ``collective``, ``stats``, ``faults``, and ``sweep``
accept ``--telemetry PATH`` to export structured
:class:`~repro.obs.telemetry.RunRecord` JSON lines (equivalently: set
the ``REPRO_TELEMETRY`` environment variable; see
docs/OBSERVABILITY.md).  ``experiment`` and ``sweep`` accept
``--parallel`` / ``--jobs N`` / ``--cache-dir PATH`` to fan points
across worker processes with content-addressed schedule caching;
results are bit-identical to serial runs.  Both also accept
``--trace PATH`` to write a Chrome trace-event sidecar of the run
(worker spans included); the figures themselves are unchanged by it.

Every subcommand exits nonzero on failure: ``1`` for a runtime error
(the message goes to stderr), ``2`` for bad arguments, ``130`` on
Ctrl-C.  ``report`` exits ``1`` when any figure check FAILs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Sequence

from repro.analysis.experiments import (
    EXPERIMENTS,
    run_experiment,
    run_sweep,
    sweep_run_id,
)
from repro.collectives.api import HypercubeCollectives
from repro.core.paths import ResolutionOrder
from repro.multicast.ports import ALL_PORT, ONE_PORT, k_port
from repro.multicast.registry import ALGORITHMS, get_algorithm
from repro.obs import sink as telemetry_sink
from repro.simulator.params import NCUBE2
from repro.simulator.run import simulate_multicast

__all__ = ["main"]


def _with_telemetry(args: argparse.Namespace, fn: Callable):
    """Run ``fn`` with ``--telemetry PATH`` installed as the JSONL sink."""
    path = getattr(args, "telemetry", None)
    if not path:
        return fn()
    previous = telemetry_sink.configure(path)
    try:
        return fn()
    finally:
        telemetry_sink.configure(previous)


def _with_trace(args: argparse.Namespace, fn: Callable):
    """Run ``fn`` under a fresh tracer when ``--trace PATH`` was given,
    exporting the Chrome trace-event JSON afterwards.  With ``--json``
    the note goes to stderr so stdout stays a clean document."""
    path = getattr(args, "trace", None)
    if not path:
        return fn()
    from repro.obs.exporters import write_chrome_trace
    from repro.obs.trace_spans import Tracer, trace_capture

    with trace_capture(Tracer(label=args.command)) as tracer:
        result = fn()
    events = write_chrome_trace(path, tracer)
    out = sys.stderr if getattr(args, "json", False) else sys.stdout
    print(f"trace {tracer.trace_id}: {events} event(s) written to {path}", file=out)
    return result


def _parse_ports(text: str):
    if text == "all":
        return ALL_PORT
    if text == "one" or text == "1":
        return ONE_PORT
    return k_port(int(text))


def _parse_dests(text: str) -> list[int]:
    return [int(tok, 0) for tok in text.replace(",", " ").split()]


def _cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms:")
    for name in sorted(ALGORITHMS):
        print(f"  {name}")
    print("experiments:")
    for exp in EXPERIMENTS.values():
        print(f"  {exp.id:<22} {exp.title} ({exp.description})")
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    alg = get_algorithm(args.algorithm)
    dests = _parse_dests(args.destinations)
    order = ResolutionOrder.ASCENDING if args.ascending else ResolutionOrder.DESCENDING
    tree = alg.build_tree(args.n, args.source, dests, order)
    ports = _parse_ports(args.ports)
    sched = tree.schedule(ports)
    width = args.n
    print(f"{alg.name} multicast in a {args.n}-cube, {ports.name}")
    print(f"source {args.source:0{width}b}, {len(dests)} destination(s)")
    for send in tree.sends:
        step = sched.step_of(send)
        print(f"  step {step}: {send.src:0{width}b} -> {send.dst:0{width}b}")
    print(f"steps: {sched.max_step}   tree depth: {tree.depth()}   hops: {tree.total_hops()}")
    report = sched.check_contention()
    print(f"contention check: {report.summary()}")
    if args.simulate or args.timeline:
        res = simulate_multicast(tree, args.size, NCUBE2, ports, trace=args.timeline)
        print(
            f"simulated (4096B unless --size): avg {res.avg_delay:.0f} us, "
            f"max {res.max_delay:.0f} us, blocked {res.total_blocked_time:.0f} us"
        )
        if args.timeline:
            from repro.simulator.timeline import render_timeline

            print()
            print(render_timeline(res.network.trace, args.n))
    return 0 if report.ok else 1


def _resolve_jobs(args: argparse.Namespace) -> int | None:
    """``--jobs N`` / ``--parallel`` -> worker count (None = serial)."""
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        return max(1, jobs)
    if getattr(args, "parallel", False):
        from repro.parallel.engine import default_jobs

        return default_jobs()
    return None


def _print_parallel_summary(registry, file=None) -> None:
    """One-line ``sim.parallel.*`` digest after a parallel run."""
    snap = registry.snapshot()

    def val(name: str) -> float:
        return snap.get(f"sim.parallel.{name}", {}).get("value", 0)

    wall = snap.get("sim.parallel.dispatch_wall", {}).get("total_seconds", 0.0)
    print(
        f"parallel: {val('points_total'):g} point(s), "
        f"{val('points_remote'):g} remote, "
        f"cache {val('cache_hits'):g} hit(s) / {val('cache_misses'):g} miss(es), "
        f"{val('worker_failures'):g} worker failure(s), "
        f"dispatch {wall:.2f} s",
        file=file if file is not None else sys.stdout,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    jobs = _resolve_jobs(args)
    table = _with_trace(
        args,
        lambda: _with_telemetry(
            args,
            lambda: run_experiment(
                args.id, fast=not args.full, jobs=jobs, cache_dir=args.cache_dir
            ),
        ),
    )
    if args.json:
        print(table.to_json())
        return 0
    print(table.render(args.precision))
    if args.plot:
        from repro.analysis.plot import ascii_plot

        print()
        print(ascii_plot(table))
    return 0


def _resolve_watchdog(args: argparse.Namespace):
    """``--watchdog`` / explicit timeouts -> a WatchdogConfig or None."""
    soft = getattr(args, "soft_timeout_s", None)
    hard = getattr(args, "hard_timeout_s", None)
    if not getattr(args, "watchdog", False) and soft is None and hard is None:
        return None
    from repro.parallel.resilience import WatchdogConfig

    base = WatchdogConfig.from_env()
    resolved_soft = soft if soft is not None else base.soft_timeout_s
    resolved_hard = hard if hard is not None else base.hard_timeout_s
    return WatchdogConfig(
        soft_timeout_s=resolved_soft,
        hard_timeout_s=max(resolved_hard, resolved_soft),
        retry=base.retry,
    )


def _resolve_fabric(args: argparse.Namespace):
    """``--fabric-port`` (and friends) -> a FabricConfig or None."""
    port = getattr(args, "fabric_port", None)
    if port is None:
        return None
    from repro.parallel.fabric import FabricConfig

    return FabricConfig(
        bind_host=args.fabric_host,
        bind_port=port,
        min_workers=args.fabric_min_workers,
        wait_s=args.fabric_wait_s,
        cache_url=args.fabric_cache_url,
    )


def _print_fabric_summary(registry, file=None) -> None:
    """One-line ``sim.fabric.*`` digest after a fabric sweep."""
    snap = registry.snapshot()

    def val(name: str) -> float:
        return snap.get(f"sim.fabric.{name}", {}).get("value", 0)

    print(
        f"fabric: {val('workers_joined'):g} worker(s) joined, "
        f"{val('chunks_completed'):g} chunk(s) remote "
        f"({val('points_remote'):g} point(s)), "
        f"{val('hosts_lost'):g} host(s) lost, "
        f"{val('requeued_chunks'):g} chunk(s) requeued, "
        f"degraded to local {val('degraded_to_local'):g} time(s)",
        file=file if file is not None else sys.stdout,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry

    ids = args.ids or sorted(EXPERIMENTS)
    unknown = [exp_id for exp_id in ids if exp_id not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    resume = args.resume is not None
    if resume and args.journal_dir is None:
        print("--resume requires --journal-dir", file=sys.stderr)
        return 2
    run_id = sweep_run_id(ids, fast=not args.full) if args.journal_dir else None
    if resume and args.resume != "auto" and args.resume != run_id:
        print(
            f"--resume {args.resume} does not match this sweep (its run id is "
            f"{run_id}); re-issue the command line of the run being resumed",
            file=sys.stderr,
        )
        return 2
    jobs = _resolve_jobs(args)
    try:
        fabric = _resolve_fabric(args)
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    registry = MetricsRegistry()
    tables = _with_trace(
        args,
        lambda: _with_telemetry(
            args,
            lambda: run_sweep(
                ids,
                fast=not args.full,
                jobs=jobs,
                cache_dir=args.cache_dir,
                metrics=registry,
                journal_dir=args.journal_dir,
                resume=resume,
                watchdog=_resolve_watchdog(args),
                fabric=fabric,
            ),
        ),
    )
    if args.json:
        import json as _json

        print(
            _json.dumps(
                {exp_id: _json.loads(table.to_json()) for exp_id, table in tables.items()},
                indent=2,
            )
        )
    else:
        for i, table in enumerate(tables.values()):
            if i:
                print()
            print(table.render(args.precision))
    # with --json stdout is the document alone; the digest goes to stderr
    out = sys.stderr if args.json else sys.stdout
    _print_parallel_summary(registry, file=out)
    if fabric is not None:
        _print_fabric_summary(registry, file=out)
    if args.journal_dir:
        snap = registry.snapshot()
        hits = snap.get("sim.resilience.journal_hits", {}).get("value", 0)
        print(
            f"journal: {args.journal_dir}/{run_id}.jsonl "
            f"(run {run_id}, {hits:g} point(s) served from journal)",
            file=out,
        )
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}", file=out)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.parallel.worker import run_worker

    if args.beat_s <= 0:
        print(f"worker: --beat-s must be positive, got {args.beat_s}", file=sys.stderr)
        return 2
    if args.connect_timeout_s < 0:
        print(
            f"worker: --connect-timeout-s must be >= 0, got {args.connect_timeout_s}",
            file=sys.stderr,
        )
        return 2
    try:
        return run_worker(
            args.connect,
            cache_dir=args.cache_dir,
            cache_url=args.cache_url,
            label=args.label,
            connect_timeout_s=args.connect_timeout_s,
            beat_s=args.beat_s,
        )
    except ValueError as exc:  # bad HOST:PORT or cache URL
        print(f"worker: {exc}", file=sys.stderr)
        return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.exporters import write_chrome_trace, write_prometheus
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace_spans import Tracer, trace_capture

    ids = args.ids or sorted(EXPERIMENTS)
    unknown = [exp_id for exp_id in ids if exp_id not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    jobs = _resolve_jobs(args)
    registry = MetricsRegistry()
    with trace_capture(Tracer(label=f"trace:{','.join(ids)}")) as tracer:
        tables = _with_telemetry(
            args,
            lambda: run_sweep(
                ids, fast=not args.full, jobs=jobs, cache_dir=args.cache_dir,
                metrics=registry,
            ),
        )
    events = write_chrome_trace(args.out, tracer)
    print(f"trace {tracer.trace_id}: {events} event(s) written to {args.out}")
    for exp_id, table in tables.items():
        print(f"  {exp_id}: {len(table.x_values)} point(s)")
    if args.prometheus:
        write_prometheus(args.prometheus, registry)
        print(f"metrics written to {args.prometheus}")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import ledger as bench_ledger

    if args.repeat is not None and args.repeat < 1:
        print(f"--repeat must be >= 1, got {args.repeat}", file=sys.stderr)
        return 2
    threshold = args.threshold
    if threshold is None:
        raw = os.environ.get("REPRO_BENCH_THRESHOLD", "")
        try:
            threshold = float(raw) if raw else bench_ledger.DEFAULT_THRESHOLD
        except ValueError:
            print(f"bad REPRO_BENCH_THRESHOLD value {raw!r}", file=sys.stderr)
            return 2
    if threshold <= 1.0:
        print(f"--threshold must be > 1.0, got {threshold:g}", file=sys.stderr)
        return 2
    quick = not args.full
    path = bench_ledger.ledger_path(args.ledger_dir)
    try:
        book = bench_ledger.load_ledger(path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    mode = "quick" if quick else "full"
    print(
        f"bench ({mode}): {len(bench_ledger.BENCHMARK_NAMES)} benchmark(s), "
        f"host class {bench_ledger.host_class()}"
    )
    entry = bench_ledger.run_benchmark_suite(quick=quick, repeat=args.repeat)
    for name, res in entry["benchmarks"].items():
        extra = ""
        cache = res.get("cache")
        if cache:
            extra = f"   cache hit ratio {cache['hit_ratio']:.2f}"
        svc = res.get("service")
        if svc:
            extra += (
                f"   {svc['rps']:.0f} req/s, p50 {svc['p50_ms']:.2f} ms, "
                f"p99 {svc['p99_ms']:.2f} ms"
            )
        print(f"  {name:<22} {res['wall_seconds'] * 1e3:9.3f} ms{extra}")
    previous = bench_ledger.latest_entry(book, quick=quick)
    regressions = bench_ledger.compare_entries(previous, entry, threshold=threshold)
    if args.dry_run:
        print("dry run: ledger not written")
    else:
        book["entries"].append(entry)
        bench_ledger.save_ledger(path, book)
        print(f"ledger: {path} ({len(book['entries'])} entr(ies))")
    if previous is None:
        print(f"no {mode}-mode baseline for this host class: seeding the trajectory")
        return 0
    if regressions:
        print(
            f"REGRESSION: {len(regressions)} benchmark(s) slowed beyond "
            f"{threshold:g}x vs {previous['recorded_at']}:",
            file=sys.stderr,
        )
        for reg in regressions:
            print(f"  {reg}", file=sys.stderr)
        return 1
    print(f"no regressions vs {previous['recorded_at']} (threshold {threshold:g}x)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lint import RULES, lint_paths, load_baseline, save_baseline, split_findings
    from repro.lint.baseline import BaselineError

    paths = args.paths or ["src"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    unknown_rules = [r for r in (args.select or []) if r.upper() not in RULES]
    if unknown_rules:
        print(
            f"lint: unknown rule(s): {', '.join(unknown_rules)} "
            f"(known: {', '.join(sorted(RULES))})",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load_baseline(args.baseline)
    except BaselineError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    result = lint_paths(paths, jobs=_resolve_jobs(args))
    if args.select:
        selected = {r.upper() for r in args.select}
        result.findings = [f for f in result.findings if f.rule in selected]
    new, baselined = split_findings(result.findings, baseline)

    if args.update_baseline:
        report_only: dict[str, int] = {}
        for tree in ("tests", "examples"):
            if os.path.isdir(tree):
                report_only[tree] = len(lint_paths([tree]).findings)
        save_baseline(args.baseline, result.findings, report_only)
        counts = ", ".join(f"{tree}: {n}" for tree, n in sorted(report_only.items()))
        print(
            f"baseline {args.baseline}: {len(result.findings)} grandfathered "
            f"finding(s); report-only counts {{{counts}}}"
        )
        return 0

    if args.format == "json":
        print(
            _json.dumps(
                {
                    "schema": 1,
                    "paths": list(paths),
                    "files": result.files,
                    "counts": {
                        "findings": len(result.findings),
                        "new": len(new),
                        "waived": result.waived,
                        "baselined": baselined,
                    },
                    "findings": [finding.to_dict() for finding in new],
                    "clean": not new,
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.format())
        verdict = "clean" if not new else f"{len(new)} new finding(s)"
        print(
            f"lint: {result.files} file(s) checked, {verdict} "
            f"({result.waived} waived, {baselined} baselined)"
        )
    if new and not args.report_only:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import AdmissionConfig, ServiceConfig, serve_async

    if not 0 <= args.port <= 65535:
        print(f"serve: port must be in [0, 65535], got {args.port}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"serve: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.deadline_ms <= 0:
        print(f"serve: --deadline-ms must be positive, got {args.deadline_ms}", file=sys.stderr)
        return 2
    try:
        admission = AdmissionConfig(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            rate_per_client=args.rate,
            burst=args.burst,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.workers,
        admission=admission,
        deadline_ms=args.deadline_ms,
        drain_grace_s=args.drain_grace_s,
    )

    def ready(app) -> None:
        # the line scripts and the CI smoke job wait for (flushed so a
        # piped stdout delivers it before the first request arrives)
        print(f"serving on http://{app.host}:{app.port}", flush=True)

    return asyncio.run(serve_async(config, ready=ready))


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import markdown_report

    figures = args.figures.split(",") if args.figures else None
    doc = markdown_report(fast=not args.full, figures=figures)
    print(doc)
    if "| FAIL |" in doc:
        print("report: one or more figure checks FAILed", file=sys.stderr)
        return 1
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from repro.parallel.cache import verify_cache_dir

    try:
        audit = verify_cache_dir(args.cache_dir, repair=args.repair)
    except FileNotFoundError:
        print(f"no such cache directory: {args.cache_dir}", file=sys.stderr)
        return 2
    print(f"cache {args.cache_dir}: {audit.ok} intact entr(ies)")
    for damage, names in sorted(audit.damaged.items()):
        action = "quarantined" if args.repair else "found"
        print(f"  {damage}: {len(names)} {action}")
        for name in names[:10]:
            print(f"    {name}")
        if len(names) > 10:
            print(f"    ... and {len(names) - 10} more")
    if audit.quarantined_pending:
        print(f"  {audit.quarantined_pending} previously quarantined entr(ies) pending gc")
    if audit.stray_tmp:
        print(f"  {audit.stray_tmp} stray temp file(s) pending gc")
    if audit.clean:
        print("  no damage")
        return 0
    if args.repair:
        print("damaged entries quarantined; they will recompute on next use")
        return 0
    print("run 'cache verify --repair' to quarantine, then 'cache gc' to reclaim")
    return 1


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from repro.parallel.cache import gc_cache_dir

    try:
        removed = gc_cache_dir(args.cache_dir)
    except FileNotFoundError:
        print(f"no such cache directory: {args.cache_dir}", file=sys.stderr)
        return 2
    print(
        f"cache {args.cache_dir}: removed {removed['quarantined']} quarantined, "
        f"{removed['tmp']} temp file(s), {removed['empty_dirs']} empty dir(s)"
    )
    return 0


def _cmd_collective(args: argparse.Namespace) -> int:
    return _with_telemetry(args, lambda: _run_collective(args))


def _run_collective(args: argparse.Namespace) -> int:
    comm = HypercubeCollectives(
        args.n, ports=_parse_ports(args.ports), algorithm=args.algorithm
    )
    op = args.op
    if op == "broadcast":
        r = comm.broadcast(args.root, args.size)
        print(f"broadcast: avg {r.avg_delay:.0f} us, max {r.max_delay:.0f} us")
    elif op == "multicast":
        r = comm.multicast(args.root, _parse_dests(args.destinations or "1"), args.size)
        print(f"multicast: avg {r.avg_delay:.0f} us, max {r.max_delay:.0f} us")
    else:
        runner = {
            "scatter": lambda: comm.scatter(args.root, args.size),
            "gather": lambda: comm.gather(args.root, args.size),
            "allgather": lambda: comm.allgather(args.size),
            "reduce": lambda: comm.reduce(args.root, args.size),
            "allreduce": lambda: comm.allreduce(args.size),
            "barrier": lambda: comm.barrier(),
        }[op]
        r = runner()
        print(f"{op}: completion {r.completion_time:.0f} us ({r.events} events)")
    return 0


def _format_metric(name: str, snap: dict) -> str:
    kind = snap.get("type")
    if kind == "counter":
        return f"  {name}: {snap['value']:g}"
    if kind == "gauge":
        return f"  {name}: {snap['value']:g} (min {snap['min']:g}, max {snap['max']:g})"
    if kind == "timer":
        return (
            f"  {name}: {snap['total_seconds']:.6f} s over {snap['count']} span(s)"
        )
    if kind == "histogram":
        return (
            f"  {name}: count {snap['count']}, mean {snap['mean']:.1f}, "
            f"min {snap['min']:.1f}, max {snap['max']:.1f}"
        )
    return f"  {name}: {snap}"


def _stats_from_file(args: argparse.Namespace) -> int:
    """``stats --from PATH``: summarize an exported telemetry file.

    Per the exit-code contract, a missing or corrupt file is an
    argument-level error: clean one-line message, exit 2, no traceback.
    """
    import json as _json

    from repro.obs.sink import read_jsonl

    path = args.from_path
    try:
        records = read_jsonl(path)
    except OSError as exc:
        print(f"error: cannot read telemetry file {path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: corrupt telemetry file {path}: {exc}", file=sys.stderr)
        return 2
    kinds: dict[str, int] = {}
    traces: set[str] = set()
    wall = 0.0
    events = 0
    for rec in records:
        kinds[rec.kind] = kinds.get(rec.kind, 0) + 1
        wall += rec.wall_seconds
        events += rec.events or 0
        if rec.trace_id:
            traces.add(rec.trace_id)
    if args.json:
        print(
            _json.dumps(
                {
                    "path": str(path),
                    "records": len(records),
                    "kinds": dict(sorted(kinds.items())),
                    "wall_seconds": wall,
                    "events": events,
                    "trace_ids": sorted(traces),
                },
                indent=2,
            )
        )
        return 0
    print(f"telemetry {path}: {len(records)} record(s)")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind}: {count}")
    print(f"  wall: {wall:.4f} s total   events: {events}")
    if traces:
        print(f"  trace id(s): {', '.join(sorted(traces))}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.probes import default_probes, probe_summaries
    from repro.obs.rollup import channel_rollup
    from repro.obs.sink import JsonlSink, capture

    if args.from_path is not None:
        return _stats_from_file(args)
    if args.n is None or args.destinations is None:
        print("stats: -n and -d/--destinations are required (unless --from)", file=sys.stderr)
        return 2
    alg = get_algorithm(args.algorithm)
    dests = _parse_dests(args.destinations)
    order = ResolutionOrder.ASCENDING if args.ascending else ResolutionOrder.DESCENDING
    tree = alg.build_tree(args.n, args.source, dests, order)
    ports = _parse_ports(args.ports)

    registry = MetricsRegistry()
    probes = default_probes()
    # capture the driver's own record so we can enrich it with probe
    # and channel-level data before exporting
    with capture() as mem:
        res = simulate_multicast(
            tree,
            args.size,
            NCUBE2,
            ports,
            trace=True,
            metrics=registry,
            probes=probes,
            label=f"stats/{alg.name}",
        )
    record = mem.records[0]
    record.extra["probes"] = probe_summaries(probes)
    record.extra["channels"] = channel_rollup(
        res.network, horizon=res.completion_time, top=args.top
    )

    if args.telemetry:
        JsonlSink(args.telemetry).write(record)
    else:
        telemetry_sink.emit(record)  # honor REPRO_TELEMETRY if set

    if args.json:
        print(record.to_json())
        return 0

    width = args.n
    print(f"{alg.name} multicast replay in a {args.n}-cube, {ports.name}, {args.size} bytes")
    print(f"source {args.source:0{width}b}, {len(dests)} destination(s)   run {record.run_id}")
    print(
        f"delays: avg {res.avg_delay:.0f} us, max {res.max_delay:.0f} us, "
        f"completion {res.completion_time:.0f} us"
    )
    print(
        f"events: {res.events}   worms: {len(res.network.worms)}   "
        f"blocked: {res.total_blocked_time:.0f} us   wall: {record.wall_seconds:.4f} s"
    )
    print("metrics:")
    for name, snap in record.metrics.items():
        print(_format_metric(name, snap))
    print("probes:")
    cb = record.extra["probes"]["callback_time"]
    print(f"  callback wall time: {cb['total_wall_seconds']:.6f} s")
    for label, entry in cb["by_callback"].items():
        print(f"    {label}: {entry['fires']} fire(s), {entry['wall_seconds']:.6f} s")
    hd = record.extra["probes"]["heap_depth"]
    print(f"  heap depth: peak {hd['peak']} ({hd['scheduled']} scheduled)")
    ca = record.extra["probes"]["cancellation"]
    print(
        f"  cancellation: {ca['cancelled']}/{ca['scheduled']} "
        f"({100.0 * ca['cancellation_rate']:.1f}%)"
    )
    ch = record.extra["channels"]
    print(
        f"channels: {ch['channels_used']} used, {ch['occupancies']} occupanc(ies)"
    )
    if ch["hotspot_arcs"]:
        hot = ", ".join(
            f"({h['node']:0{width}b},d{h['dim']}) {h['busy_us']:.0f}us"
            for h in ch["hotspot_arcs"][: args.top]
        )
        print(f"  hotspots: {hot}")
    busy = ch["per_dimension_busy_us"]
    if busy:
        print("  per-dim busy:  " + "  ".join(f"d{d}={t:.0f}us" for d, t in busy.items()))
    blocked = ch["per_dimension_blocked_us"]
    if blocked:
        print("  per-dim blocked:  " + "  ".join(f"d{d}={t:.0f}us" for d, t in blocked.items()))
    else:
        print("  per-dim blocked: none (contention-free)")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    return _with_telemetry(args, lambda: _run_faults(args))


def _run_faults(args: argparse.Namespace) -> int:
    # heavyweight subsystem: import only when the subcommand runs
    from repro.analysis.workloads import random_destination_sets
    from repro.faults import (
        DegradedHypercube,
        FaultScenario,
        repair_multicast,
        simulate_degraded_multicast,
        verify_degraded,
    )
    from repro.multicast.registry import PAPER_ALGORITHMS

    n = args.n
    ks = sorted({int(tok) for tok in args.links.replace(",", " ").split()})
    names = [args.algorithm] if args.algorithm else list(PAPER_ALGORITHMS)
    dest_sets = random_destination_sets(n, args.m, args.sets, seed=args.seed + 17)
    mode = "fault-aware repair" if args.repair else "oblivious abort+retry"
    print(
        f"fault sweep: {n}-cube, m={args.m}, {args.sets} destination set(s), "
        f"{args.size} bytes, {mode}, seed {args.seed}"
    )
    print(
        f"{'links':>5} {'algorithm':<10} {'delivered':>11} {'ratio':>6} "
        f"{'avg us':>8} {'aborted':>8} {'retries':>8} {'gave up':>8} {'repairs':>8}"
    )
    worst_ratio = 1.0
    for k in ks:
        scenario = (
            FaultScenario.random_links(n, k, seed=args.seed + k)
            if k
            else FaultScenario(n)
        )
        degraded = DegradedHypercube(n, scenario)
        for name in names:
            delivered = total = aborted = retries = gave_up = repairs = 0
            delay_sum = 0.0
            delay_runs = 0
            for dests in dest_sets:
                unreachable: tuple[int, ...] = ()
                if args.repair:
                    report = repair_multicast(name, degraded, n, 0, dests)
                    verify_degraded(report).raise_if_failed()
                    tree = report.tree
                    unreachable = report.unreachable
                    repairs += len(report.repairs)
                else:
                    tree = get_algorithm(name).build_tree(n, 0, dests)
                res = simulate_degraded_multicast(
                    tree,
                    scenario,
                    args.size,
                    max_retries=args.retries,
                    deadline_us=args.deadline_us,
                    label=f"faults/{name}/links{k}",
                    unreachable_hint=unreachable,
                )
                delivered += len(res.delivered)
                total += len(tree.destinations | set(unreachable))
                aborted += res.aborted_worms
                retries += res.retries
                gave_up += res.gave_up
                if res.delivered:
                    delay_sum += res.avg_delay
                    delay_runs += 1
            ratio = delivered / total if total else 1.0
            worst_ratio = min(worst_ratio, ratio)
            avg = delay_sum / delay_runs if delay_runs else 0.0
            print(
                f"{k:>5} {name:<10} {delivered:>5}/{total:<5} {ratio:>6.3f} "
                f"{avg:>8.0f} {aborted:>8} {retries:>8} {gave_up:>8} {repairs:>8}"
            )
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0 if worst_ratio >= args.min_ratio else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hypercube",
        description="All-port wormhole-routed hypercube multicast (SC'93 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list algorithms and experiments")
    p_list.set_defaults(func=_cmd_list)

    p_tree = sub.add_parser("tree", help="build and print a multicast tree")
    p_tree.add_argument("-n", type=int, required=True, help="cube dimension")
    p_tree.add_argument("-s", "--source", type=int, default=0)
    p_tree.add_argument("-d", "--destinations", required=True, help="e.g. '1,3,5' or '0b101 7'")
    p_tree.add_argument("-a", "--algorithm", default="wsort", choices=sorted(ALGORITHMS))
    p_tree.add_argument("-p", "--ports", default="all", help="'one', 'all', or k")
    p_tree.add_argument("--ascending", action="store_true", help="nCUBE-2 resolution order")
    p_tree.add_argument("--simulate", action="store_true", help="also run the timed simulator")
    p_tree.add_argument("--timeline", action="store_true", help="draw channel-occupancy timeline")
    p_tree.add_argument("--size", type=int, default=4096, help="message bytes for --simulate")
    p_tree.set_defaults(func=_cmd_tree)

    p_exp = sub.add_parser("experiment", help="reproduce a figure")
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--full", action="store_true", help="paper-parity parameters")
    p_exp.add_argument("--precision", type=int, default=2)
    p_exp.add_argument("--plot", action="store_true", help="also draw an ASCII plot")
    p_exp.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p_exp.add_argument(
        "--parallel", action="store_true",
        help="fan figure points across worker processes (CPU count / REPRO_JOBS)",
    )
    p_exp.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker process count (implies --parallel; 1 = serial)",
    )
    p_exp.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed schedule/delay cache shared across runs and workers",
    )
    p_exp.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="export one RunRecord JSON line per figure point to PATH",
    )
    p_exp.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON sidecar of the run to PATH",
    )
    p_exp.set_defaults(func=_cmd_experiment)

    p_sweep = sub.add_parser(
        "sweep", help="run several figure reproductions under one parallel context"
    )
    p_sweep.add_argument(
        "ids", nargs="*", metavar="ID",
        help="experiment ids (default: every registered experiment)",
    )
    p_sweep.add_argument("--full", action="store_true", help="paper-parity parameters")
    p_sweep.add_argument("--precision", type=int, default=2)
    p_sweep.add_argument("--json", action="store_true", help="emit one JSON document")
    p_sweep.add_argument(
        "--parallel", action="store_true",
        help="fan points across worker processes (CPU count / REPRO_JOBS)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker process count (implies --parallel; 1 = serial)",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed schedule/delay cache shared across runs and workers",
    )
    p_sweep.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="export merged RunRecord JSON lines (workers included) to PATH",
    )
    p_sweep.add_argument(
        "--journal-dir", default=None, metavar="PATH",
        help="checkpoint every completed point to PATH/<run-id>.jsonl",
    )
    p_sweep.add_argument(
        "--resume", nargs="?", const="auto", default=None, metavar="RUN_ID",
        help="resume a crashed/interrupted run from its journal "
             "(requires --journal-dir; RUN_ID optional, derived from the command)",
    )
    p_sweep.add_argument(
        "--watchdog", action="store_true",
        help="arm the hung-worker watchdog (REPRO_WATCHDOG_* tune the timeouts)",
    )
    p_sweep.add_argument(
        "--soft-timeout-s", type=float, default=None, metavar="S",
        help="watchdog soft per-point timeout (implies --watchdog)",
    )
    p_sweep.add_argument(
        "--hard-timeout-s", type=float, default=None, metavar="S",
        help="watchdog hard per-point timeout: kill + requeue (implies --watchdog)",
    )
    p_sweep.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON sidecar of the sweep to PATH",
    )
    p_sweep.add_argument(
        "--fabric-port", type=int, default=None, metavar="PORT",
        help="coordinate TCP worker hosts on PORT instead of using the "
             "local pool (0 = ephemeral; start workers with "
             "'repro-hypercube worker --connect HOST:PORT')",
    )
    p_sweep.add_argument(
        "--fabric-host", default="127.0.0.1", metavar="HOST",
        help="interface the fabric coordinator binds (default: 127.0.0.1)",
    )
    p_sweep.add_argument(
        "--fabric-min-workers", type=int, default=1, metavar="N",
        help="workers to wait for before dispatching (late joiners still welcome)",
    )
    p_sweep.add_argument(
        "--fabric-wait-s", type=float, default=15.0, metavar="S",
        help="how long to wait for --fabric-min-workers before proceeding",
    )
    p_sweep.add_argument(
        "--fabric-cache-url", default=None, metavar="URL",
        help="planning-service URL advertised to workers as the shared "
             "schedule-cache tier (e.g. http://HOST:8421)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_worker = sub.add_parser(
        "worker", help="serve one sweep-fabric worker link until shutdown"
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the sweep coordinator's fabric endpoint",
    )
    p_worker.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="local content-addressed schedule cache for this worker",
    )
    p_worker.add_argument(
        "--cache-url", default=None, metavar="URL",
        help="planning-service URL for the fleet-shared cache tier "
             "(default: whatever the coordinator advertises)",
    )
    p_worker.add_argument(
        "--label", default=None, metavar="NAME",
        help="worker id shown in fabric telemetry (default: host-pid)",
    )
    p_worker.add_argument(
        "--connect-timeout-s", type=float, default=30.0, metavar="S",
        help="keep retrying the connection this long (workers may start first)",
    )
    p_worker.add_argument(
        "--beat-s", type=float, default=0.25, metavar="S",
        help="heartbeat interval while idle or making progress",
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_trace = sub.add_parser(
        "trace", help="run experiments under the span tracer and export the timeline"
    )
    p_trace.add_argument(
        "ids", nargs="*", metavar="ID",
        help="experiment ids (default: every registered experiment)",
    )
    p_trace.add_argument(
        "-o", "--out", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output (default: trace.json)",
    )
    p_trace.add_argument(
        "--prometheus", default=None, metavar="PATH",
        help="also dump the metrics registry in Prometheus text format",
    )
    p_trace.add_argument("--full", action="store_true", help="paper-parity parameters")
    p_trace.add_argument(
        "--parallel", action="store_true",
        help="fan points across worker processes (CPU count / REPRO_JOBS)",
    )
    p_trace.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker process count (implies --parallel; 1 = serial)",
    )
    p_trace.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed schedule/delay cache shared across runs and workers",
    )
    p_trace.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="export merged RunRecord JSON lines (workers included) to PATH",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench", help="run the benchmark suite against the committed ledger"
    )
    bench_mode = p_bench.add_mutually_exclusive_group()
    bench_mode.add_argument(
        "--quick", action="store_true", help="thinned workloads (the default)"
    )
    bench_mode.add_argument("--full", action="store_true", help="full workloads")
    p_bench.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="timed repeats per benchmark, best-of (default: 3 quick / 5 full)",
    )
    p_bench.add_argument(
        "--ledger-dir", default="benchmarks", metavar="PATH",
        help="directory holding BENCH_<host-class>.json (default: benchmarks)",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=None, metavar="X",
        help="regression threshold, new > previous * X fails "
             "(default: 1.5, or REPRO_BENCH_THRESHOLD)",
    )
    p_bench.add_argument(
        "--dry-run", action="store_true",
        help="compare against the ledger without appending to it",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_cache = sub.add_parser(
        "cache", help="inspect and maintain a schedule-cache directory"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cv = cache_sub.add_parser(
        "verify", help="audit every entry's checksum, schema, and key"
    )
    p_cv.add_argument("cache_dir", metavar="PATH")
    p_cv.add_argument(
        "--repair", action="store_true",
        help="quarantine damaged entries (they recompute on next use)",
    )
    p_cv.set_defaults(func=_cmd_cache_verify)
    p_cg = cache_sub.add_parser(
        "gc", help="remove quarantined entries, stray temp files, empty dirs"
    )
    p_cg.add_argument("cache_dir", metavar="PATH")
    p_cg.set_defaults(func=_cmd_cache_gc)

    p_lint = sub.add_parser(
        "lint", help="project-invariant static analysis (REP001..REP006)"
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="findings as human-readable lines or one JSON document",
    )
    p_lint.add_argument(
        "--baseline", default="lint-baseline.json", metavar="PATH",
        help="committed grandfather file (default: lint-baseline.json; "
             "missing file = empty baseline, corrupt file = exit 2)",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and record "
             "report-only counts for tests/ and examples/",
    )
    p_lint.add_argument(
        "--report-only", action="store_true",
        help="print findings but exit 0 (advisory sweeps over tests/examples)",
    )
    p_lint.add_argument(
        "--select", nargs="+", default=None, metavar="RULE",
        help="only report these rule ids (e.g. REP002 REP004)",
    )
    p_lint.add_argument(
        "--parallel", action="store_true",
        help="fan files across worker processes (CPU count / REPRO_JOBS)",
    )
    p_lint.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker process count (implies --parallel; 1 = serial)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve", help="run the schedule-planning HTTP service until SIGTERM"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8421, help="listen port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="content-addressed schedule cache shared with sweep runs",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="build executor threads (the service's build concurrency)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="admitted requests before new arrivals queue",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=128, metavar="N",
        help="queued requests before new arrivals get 503",
    )
    p_serve.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="per-client sustained req/s; above it clients get 429 (default: off)",
    )
    p_serve.add_argument(
        "--burst", type=float, default=20.0, metavar="B",
        help="per-client burst allowance for --rate",
    )
    p_serve.add_argument(
        "--deadline-ms", type=float, default=10_000.0, metavar="MS",
        help="default per-request deadline (X-Deadline-Ms can lower it)",
    )
    p_serve.add_argument(
        "--drain-grace-s", type=float, default=5.0, metavar="S",
        help="seconds granted to in-flight requests on SIGTERM drain",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_rep = sub.add_parser("report", help="paper-vs-measured markdown report")
    p_rep.add_argument("--full", action="store_true", help="paper-parity parameters")
    p_rep.add_argument("--figures", default=None, help="comma-separated subset, e.g. fig9,fig11")
    p_rep.set_defaults(func=_cmd_report)

    p_col = sub.add_parser("collective", help="time a collective operation")
    p_col.add_argument(
        "op",
        choices=[
            "broadcast",
            "multicast",
            "scatter",
            "gather",
            "allgather",
            "reduce",
            "allreduce",
            "barrier",
        ],
    )
    p_col.add_argument("-n", type=int, required=True)
    p_col.add_argument("--root", type=int, default=0)
    p_col.add_argument("-d", "--destinations", default=None)
    p_col.add_argument("--size", type=int, default=4096)
    p_col.add_argument("-a", "--algorithm", default="wsort", choices=sorted(ALGORITHMS))
    p_col.add_argument("-p", "--ports", default="all")
    p_col.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="export the operation's RunRecord JSON line(s) to PATH",
    )
    p_col.set_defaults(func=_cmd_collective)

    p_stats = sub.add_parser(
        "stats", help="replay one multicast with full instrumentation"
    )
    p_stats.add_argument("-n", type=int, default=None, help="cube dimension")
    p_stats.add_argument("-s", "--source", type=int, default=0)
    p_stats.add_argument(
        "-d", "--destinations", default=None, help="e.g. '1,3,5' or '0b101 7'"
    )
    p_stats.add_argument(
        "--from", dest="from_path", default=None, metavar="PATH",
        help="summarize an exported telemetry JSONL file instead of running",
    )
    p_stats.add_argument("-a", "--algorithm", default="wsort", choices=sorted(ALGORITHMS))
    p_stats.add_argument("-p", "--ports", default="all", help="'one', 'all', or k")
    p_stats.add_argument("--ascending", action="store_true", help="nCUBE-2 resolution order")
    p_stats.add_argument("--size", type=int, default=4096, help="message bytes")
    p_stats.add_argument("--top", type=int, default=5, help="hotspot arcs to show")
    p_stats.add_argument("--json", action="store_true", help="print the RunRecord JSON")
    p_stats.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="export the enriched RunRecord JSON line to PATH",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_faults = sub.add_parser(
        "faults", help="sweep delivery vs failed links on a degraded cube"
    )
    p_faults.add_argument("-n", type=int, required=True, help="cube dimension")
    p_faults.add_argument(
        "--links", default="0,1,2,3", help="failed-link counts to sweep, e.g. '0,2,4'"
    )
    p_faults.add_argument("--seed", type=int, default=9300, help="fault scenario seed")
    p_faults.add_argument("-m", type=int, default=8, help="destinations per multicast")
    p_faults.add_argument("--sets", type=int, default=3, help="destination sets per point")
    p_faults.add_argument("--size", type=int, default=4096, help="message bytes")
    p_faults.add_argument("--retries", type=int, default=3, help="per-send retry cap")
    p_faults.add_argument(
        "--deadline-us", type=float, default=None, help="hard stop (simulated us)"
    )
    p_faults.add_argument(
        "--repair", action="store_true",
        help="build fault-aware detour schedules instead of oblivious retry",
    )
    p_faults.add_argument(
        "-a", "--algorithm", default=None, choices=sorted(ALGORITHMS),
        help="single algorithm (default: the four paper algorithms)",
    )
    p_faults.add_argument(
        "--min-ratio", type=float, default=0.0,
        help="exit nonzero if any point's delivery ratio falls below this",
    )
    p_faults.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="export one degraded-multicast RunRecord JSON line per run to PATH",
    )
    p_faults.set_defaults(func=_cmd_faults)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        # a failed experiment/sweep must fail the invoking script, not
        # dump a traceback and exit 0 or crash with 1-of-N noise
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
