"""repro -- Efficient collective data distribution in all-port wormhole-routed hypercubes.

A from-scratch reproduction of Robinson, Judd, McKinley & Cheng,
*Efficient Collective Data Distribution in All-Port Wormhole-Routed
Hypercubes* (Supercomputing '93): the contention theory for E-cube
routed hypercubes, the U-cube / Maxport / Combine / W-sort multicast
algorithms, a wormhole-routed discrete-event network simulator standing
in for the nCUBE-2 testbed and the MultiSim tool, a small collective
communication library built on the multicast primitive, and the full
evaluation harness regenerating the paper's Figures 9-14.

Quickstart::

    from repro import WSort, ALL_PORT

    tree = WSort().build_tree(n=4, source=0, destinations=[1, 3, 5, 7, 11, 12, 14, 15])
    schedule = tree.schedule(ALL_PORT)
    print(schedule.max_step)            # 2 -- Fig. 8(c)
    assert schedule.check_contention()  # Definition 4 verified
"""

from repro.collectives.api import HypercubeCollectives
from repro.core import (
    ResolutionOrder,
    Subcube,
    Unicast,
    check_contention_free,
    delta,
    ecube_path,
)
from repro.faults import (
    DegradedHypercube,
    FaultAware,
    FaultScenario,
    repair_multicast,
    simulate_degraded_multicast,
    verify_degraded,
)
from repro.multicast import (
    ALGORITHMS,
    ALL_PORT,
    ONE_PORT,
    Combine,
    DimensionalSAF,
    Maxport,
    MulticastAlgorithm,
    MulticastTree,
    PortModel,
    Schedule,
    SeparateAddressing,
    UCube,
    WSort,
    get_algorithm,
    k_port,
    register,
    verify_multicast,
    weighted_sort,
)
from repro.obs import MetricsRegistry, RunRecord

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ALL_PORT",
    "Combine",
    "DegradedHypercube",
    "DimensionalSAF",
    "FaultAware",
    "FaultScenario",
    "HypercubeCollectives",
    "Maxport",
    "MetricsRegistry",
    "MulticastAlgorithm",
    "MulticastTree",
    "ONE_PORT",
    "PortModel",
    "ResolutionOrder",
    "RunRecord",
    "Schedule",
    "SeparateAddressing",
    "Subcube",
    "UCube",
    "Unicast",
    "WSort",
    "__version__",
    "check_contention_free",
    "delta",
    "ecube_path",
    "get_algorithm",
    "k_port",
    "register",
    "repair_multicast",
    "simulate_degraded_multicast",
    "verify_degraded",
    "verify_multicast",
    "weighted_sort",
]
