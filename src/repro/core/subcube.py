"""Subcubes with fixed high-order address bits (Definition 2).

A subcube ``S = (n_S, M_S)`` of an ``n``-cube consists of the nodes whose
highest-order ``n - n_S`` bits equal the mask ``M_S``; the low ``n_S``
bits range freely.  Node addresses within a subcube are contiguous
integers (Lemma 2), which is what makes cube-ordered *chains* (Def. 5)
representable as sequences whose subcube members are contiguous runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.addressing import require_address

__all__ = ["Subcube"]


@dataclass(frozen=True, slots=True)
class Subcube:
    """A subcube ``(n_S, M_S)`` of an ``n``-cube (Definition 2).

    Attributes:
        n: dimensionality of the enclosing hypercube.
        dim: the subcube dimensionality ``n_S`` (number of free low bits).
        mask: the value ``M_S`` of the fixed high-order ``n - n_S`` bits.
    """

    n: int
    dim: int
    mask: int

    def __post_init__(self) -> None:
        if not 0 <= self.dim <= self.n:
            raise ValueError(f"subcube dim {self.dim} out of range for an {self.n}-cube")
        if self.mask < 0 or self.mask >> (self.n - self.dim):
            raise ValueError(
                f"mask {self.mask} does not fit in the {self.n - self.dim} fixed high bits"
            )

    @classmethod
    def whole_cube(cls, n: int) -> "Subcube":
        """The improper subcube equal to the entire ``n``-cube."""
        return cls(n, n, 0)

    @classmethod
    def containing(cls, node: int, dim: int, n: int) -> "Subcube":
        """The unique ``dim``-dimensional subcube that contains ``node``."""
        require_address(node, n)
        return cls(n, dim, node >> dim)

    @classmethod
    def smallest_containing(cls, nodes, n: int) -> "Subcube":
        """The smallest subcube (fewest free bits) containing all ``nodes``."""
        it = iter(nodes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("smallest_containing requires at least one node") from None
        require_address(first, n)
        lo = hi = first
        for u in it:
            require_address(u, n)
            lo = min(lo, u)
            hi = max(hi, u)
        dim = 0
        while (lo >> dim) != (hi >> dim):
            dim += 1
        return cls(n, dim, lo >> dim)

    @property
    def size(self) -> int:
        """Number of nodes in the subcube (``2**dim``)."""
        return 1 << self.dim

    @property
    def lo(self) -> int:
        """Smallest node address in the subcube."""
        return self.mask << self.dim

    @property
    def hi(self) -> int:
        """Largest node address in the subcube."""
        return (self.mask << self.dim) | ((1 << self.dim) - 1)

    def __contains__(self, node: int) -> bool:
        """Membership test: ``u in S`` iff ``(u >> n_S) == M_S``."""
        return 0 <= node < (1 << self.n) and (node >> self.dim) == self.mask

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    def nodes(self) -> list[int]:
        """All node addresses in the subcube, in ascending order."""
        return list(self)

    def halves(self) -> tuple["Subcube", "Subcube"]:
        """Split into the two ``(dim - 1)``-dimensional halves.

        Returns ``(low_half, high_half)`` where the low half has bit
        ``dim - 1`` equal to 0.  These are the "subcube halves" that
        ``weighted_sort`` (Fig. 7) may exchange.
        """
        if self.dim == 0:
            raise ValueError("a 0-dimensional subcube has no halves")
        return (
            Subcube(self.n, self.dim - 1, self.mask << 1),
            Subcube(self.n, self.dim - 1, (self.mask << 1) | 1),
        )

    def half_of(self, node: int) -> "Subcube":
        """The ``(dim - 1)``-dimensional half of this subcube containing ``node``."""
        if node not in self:
            raise ValueError(f"node {node} is not in subcube {self}")
        lo_half, hi_half = self.halves()
        return lo_half if node in lo_half else hi_half

    def contains_subcube(self, other: "Subcube") -> bool:
        """True if every node of ``other`` is a node of this subcube."""
        if other.n != self.n:
            return False
        if other.dim > self.dim:
            return False
        return (other.mask >> (self.dim - other.dim)) == self.mask

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fixed = self.n - self.dim
        prefix = format(self.mask, f"0{fixed}b") if fixed else ""
        return f"({self.dim}, {prefix}{'*' * self.dim})"
