"""Binary node addressing in an ``n``-cube.

A hypercube of dimension ``n`` has ``N = 2**n`` nodes.  Each node is
identified with its ``n``-bit binary address (a Python ``int`` in
``range(2**n)``).  A channel connects ``u`` and ``v`` iff their addresses
differ in exactly one bit; the channel out of ``u`` in dimension ``d``
leads to ``u ^ (1 << d)``.

This module provides the small bit-level vocabulary used throughout the
library, most importantly ``delta`` -- Definition 1 of the paper: the
highest-order bit position in which two addresses differ, which under
high-to-low E-cube routing is the *first* dimension a message travels in.
"""

from __future__ import annotations

__all__ = [
    "bit",
    "delta",
    "first_dim",
    "hamming",
    "lowest_diff",
    "neighbor",
    "popcount",
    "require_address",
    "reverse_bits",
]


def popcount(x: int) -> int:
    """Number of 1 bits in ``x`` (written ``||x||`` in the paper)."""
    if x < 0:
        raise ValueError(f"address must be non-negative, got {x}")
    return x.bit_count()


def hamming(u: int, v: int) -> int:
    """Hamming distance between addresses ``u`` and ``v``.

    This equals the length (hop count) of the E-cube path ``P(u, v)``.
    """
    return popcount(u ^ v)


def bit(x: int, k: int) -> int:
    """The ``k``-th bit of ``x`` (0 or 1); bit 0 is the least significant."""
    return (x >> k) & 1


def delta(u: int, v: int) -> int:
    """Definition 1: highest-order bit position in which ``u``, ``v`` differ.

    ``delta(u, v) == floor(log2(u ^ v))``.  Under high-to-low address
    resolution this is the first dimension traversed by the E-cube path
    from ``u`` to ``v``.

    Raises:
        ValueError: if ``u == v`` (``delta`` is undefined in that case).
    """
    x = u ^ v
    if x == 0:
        raise ValueError(f"delta(u, v) is undefined for u == v == {u}")
    return x.bit_length() - 1


def lowest_diff(u: int, v: int) -> int:
    """Lowest-order bit position in which ``u`` and ``v`` differ.

    The ascending-order analogue of :func:`delta`; under low-to-high
    address resolution (the nCUBE-2 convention) this is the first
    dimension traversed by the E-cube path from ``u`` to ``v``.

    Raises:
        ValueError: if ``u == v``.
    """
    x = u ^ v
    if x == 0:
        raise ValueError(f"lowest_diff(u, v) is undefined for u == v == {u}")
    return (x & -x).bit_length() - 1


def first_dim(u: int, v: int, descending: bool = True) -> int:
    """First dimension traversed by the E-cube route from ``u`` to ``v``.

    Args:
        u: source address.
        v: destination address (must differ from ``u``).
        descending: ``True`` for high-to-low address resolution (the
            paper's convention), ``False`` for low-to-high (nCUBE-2's).
    """
    return delta(u, v) if descending else lowest_diff(u, v)


def neighbor(u: int, d: int) -> int:
    """The neighbor of node ``u`` across dimension ``d``."""
    if d < 0:
        raise ValueError(f"dimension must be non-negative, got {d}")
    return u ^ (1 << d)


def reverse_bits(x: int, n: int) -> int:
    """Reverse the low ``n`` bits of ``x``.

    Bit-reversal conjugates ascending- and descending-order E-cube
    routing: the ascending route between ``u`` and ``v`` visits exactly
    the bit-reversed images of the nodes on the descending route between
    ``reverse_bits(u, n)`` and ``reverse_bits(v, n)``.  The library uses
    this to support both resolution orders with a single canonical
    implementation.
    """
    if x >> n:
        raise ValueError(f"address {x} does not fit in {n} bits")
    r = 0
    for _ in range(n):
        r = (r << 1) | (x & 1)
        x >>= 1
    return r


def require_address(x: int, n: int, what: str = "address") -> int:
    """Validate that ``x`` is a legal node address in an ``n``-cube."""
    if not isinstance(x, int) or isinstance(x, bool):
        raise TypeError(f"{what} must be an int, got {type(x).__name__}")
    if x < 0 or x >> n:
        raise ValueError(f"{what} {x} out of range for an {n}-cube (0..{(1 << n) - 1})")
    return x
