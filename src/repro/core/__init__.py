"""Core theory of E-cube-routed hypercubes (Section 3 of the paper).

This subpackage contains the mathematical substrate that the multicast
algorithms and their contention-freedom guarantees are built on:

- :mod:`repro.core.addressing` -- binary node addresses, ``delta`` (Def. 1),
  bit utilities.
- :mod:`repro.core.subcube` -- subcubes with fixed high-order bits (Def. 2).
- :mod:`repro.core.paths` -- dimension-ordered (E-cube) paths ``P(u, v)``,
  arcs, and the arc-disjointness theorems (Thms. 1-2).
- :mod:`repro.core.chains` -- dimension order ``<_d``, dimension-ordered
  chains, relative chains, and cube-ordered chains (Def. 5, Thm. 4).
- :mod:`repro.core.contention` -- unicast schedules, reachable sets
  (Def. 3), and the contention-freedom verifier (Def. 4, Thm. 3).
"""

from repro.core.addressing import (
    bit,
    delta,
    first_dim,
    hamming,
    neighbor,
    popcount,
    reverse_bits,
)
from repro.core.chains import (
    dimension_compare,
    dimension_sorted,
    is_cube_ordered_chain,
    is_dimension_ordered_chain,
    relative_chain,
)
from repro.core.contention import (
    ContentionReport,
    Unicast,
    check_contention_free,
    reachable_sets,
)
from repro.core.paths import (
    ResolutionOrder,
    arcs_disjoint,
    ecube_arcs,
    ecube_path,
    theorem1_guarantees_disjoint,
    theorem2_guarantees_disjoint,
)
from repro.core.subcube import Subcube

__all__ = [
    "ContentionReport",
    "ResolutionOrder",
    "Subcube",
    "Unicast",
    "arcs_disjoint",
    "bit",
    "check_contention_free",
    "delta",
    "dimension_compare",
    "dimension_sorted",
    "ecube_arcs",
    "ecube_path",
    "first_dim",
    "hamming",
    "is_cube_ordered_chain",
    "is_dimension_ordered_chain",
    "neighbor",
    "popcount",
    "reachable_sets",
    "relative_chain",
    "reverse_bits",
    "theorem1_guarantees_disjoint",
    "theorem2_guarantees_disjoint",
]
