"""Contention between unicasts of a multicast implementation (Section 3.4).

A software multicast is a collection of unicasts ``(u, v, P(u, v), t)``;
``t`` is the (integer) time step in which the unicast is sent.  Two
unicasts whose paths share an arc may or may not contend for it,
depending on timing.  Definition 4 of the paper gives the condition
under which a pair is *guaranteed* contention-free regardless of
startup latency and message length:

- their paths are arc-disjoint; or
- the earlier unicast's source can only have obtained the message
  through the later unicast's subtree -- formally ``t < tau`` and the
  later sender ``x`` is in the reachable set ``R_u`` of the earlier
  sender ``u`` (Definition 3).

This module implements reachable sets, the pairwise condition, and a
whole-schedule verifier.  The verifier is deliberately *independent* of
the algorithms' own reasoning: it recomputes paths and reachable sets
from scratch so the property-based tests exercise the algorithms
against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.paths import Arc, ResolutionOrder, ecube_arcs

__all__ = [
    "ContentionReport",
    "Unicast",
    "check_contention_free",
    "pair_contention_free",
    "reachable_sets",
]


@dataclass(frozen=True, slots=True)
class Unicast:
    """A constituent unicast ``(src, dst, P(src, dst), step)`` of a multicast.

    ``step`` is the 1-based time step in which the message is sent; all
    unicasts sent in the same step are considered (potentially)
    concurrent.
    """

    src: int
    dst: int
    step: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"unicast source and destination coincide ({self.src})")
        if self.step < 1:
            raise ValueError(f"unicast step must be >= 1, got {self.step}")

    def arcs(self, order: ResolutionOrder = ResolutionOrder.DESCENDING) -> list[Arc]:
        """The directed channels used by this unicast's E-cube path."""
        return ecube_arcs(self.src, self.dst, order)


@dataclass(slots=True)
class ContentionReport:
    """Result of verifying a unicast schedule against Definition 4."""

    ok: bool
    violations: list[tuple[Unicast, Unicast, Arc]] = field(default_factory=list)
    causality_errors: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return "contention-free"
        lines = [f"{len(self.violations)} contention violation(s)"]
        for a, b, arc in self.violations[:10]:
            lines.append(
                f"  {a.src}->{a.dst}@{a.step} vs {b.src}->{b.dst}@{b.step} share arc {arc}"
            )
        lines.extend(f"  causality: {e}" for e in self.causality_errors[:10])
        return "\n".join(lines)


def reachable_sets(source: int, unicasts: Iterable[Unicast]) -> dict[int, set[int]]:
    """Reachable set ``R_u`` for every node ``u`` in the multicast (Def. 3).

    ``R_u`` contains ``u`` itself plus every node that receives the
    message, directly or transitively, through a unicast originating at
    a node of ``R_u`` -- i.e. the subtree rooted at ``u`` when the
    multicast is viewed as a tree of unicasts.
    """
    children: dict[int, list[int]] = {}
    nodes = {source}
    for uc in unicasts:
        children.setdefault(uc.src, []).append(uc.dst)
        nodes.add(uc.src)
        nodes.add(uc.dst)

    reach: dict[int, set[int]] = {}

    def collect(u: int) -> set[int]:
        if u in reach:
            return reach[u]
        r = {u}
        for c in children.get(u, ()):
            r |= collect(c)
        reach[u] = r
        return r

    for u in nodes:
        collect(u)
    return reach


def pair_contention_free(
    a: Unicast,
    b: Unicast,
    reach: dict[int, set[int]],
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> tuple[bool, Arc | None]:
    """Definition 4 applied to one unordered pair of unicasts.

    Returns ``(True, None)`` if the pair is guaranteed contention-free,
    else ``(False, shared_arc)`` with a witness arc.
    """
    # Orient so `a` is the earlier (or equal-step) unicast.
    if b.step < a.step:
        a, b = b, a
    shared = set(a.arcs(order)) & set(b.arcs(order))
    if not shared:
        return True, None
    if a.step < b.step and b.src in reach.get(a.src, set()):
        return True, None
    return False, min(shared)


def check_contention_free(
    source: int,
    unicasts: Sequence[Unicast],
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
    arcs_of=None,
) -> ContentionReport:
    """Verify a whole multicast schedule against Definition 4.

    Also checks *causality*: every sender other than the multicast
    source must have received the message in a strictly earlier step
    than any step in which it sends.

    Args:
        arcs_of: optional ``(src, dst) -> channels`` override.  Defaults
            to E-cube paths in the given resolution order; the mesh
            extension passes XY-routed paths instead (Definition 4 is
            topology-agnostic once the channel sets are known).
    """
    report = ContentionReport(ok=True)

    recv_step: dict[int, int] = {source: 0}
    for uc in unicasts:
        if uc.dst in recv_step:
            report.ok = False
            report.causality_errors.append(
                f"node {uc.dst} receives the message more than once"
            )
        else:
            recv_step[uc.dst] = uc.step
    for uc in unicasts:
        got = recv_step.get(uc.src)
        if got is None:
            report.ok = False
            report.causality_errors.append(
                f"node {uc.src} sends at step {uc.step} without ever receiving"
            )
        elif got >= uc.step:
            report.ok = False
            report.causality_errors.append(
                f"node {uc.src} sends at step {uc.step} but only receives at step {got}"
            )

    reach = reachable_sets(source, unicasts)
    k = len(unicasts)
    if arcs_of is None:
        arcs = [set(uc.arcs(order)) for uc in unicasts]
    else:
        arcs = [set(arcs_of(uc.src, uc.dst)) for uc in unicasts]
    for i in range(k):
        for j in range(i + 1, k):
            shared = arcs[i] & arcs[j]
            if not shared:
                continue
            a, b = unicasts[i], unicasts[j]
            if a.step == b.step:
                ok = False
            elif a.step < b.step:
                ok = b.src in reach.get(a.src, set())
            else:
                ok = a.src in reach.get(b.src, set())
            if not ok:
                report.ok = False
                report.violations.append((a, b, min(shared)))
    return report
