"""Dimension-ordered and cube-ordered chains (Sections 4.1-4.2).

The multicast algorithms all operate on *chains*: sequences of node
addresses with structural ordering guarantees.

- A *dimension-ordered chain* (Section 4.1) is a sequence sorted by the
  relation ``<_d``.  When addresses are resolved from the highest bit
  to the lowest, ``<_d`` coincides with ordinary integer order.
- A *``d0``-relative dimension-ordered chain* is a sequence whose
  element-wise XOR with ``d0`` is dimension-ordered; the U-cube family
  sorts the source and destinations into such a chain before routing.
- A *cube-ordered chain* (Definition 5) only requires that the members
  of every subcube appear contiguously.  Every dimension-ordered chain
  is cube-ordered (Theorem 4), but not conversely; ``weighted_sort``
  produces cube-ordered chains that are not dimension-ordered.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.addressing import require_address

__all__ = [
    "dimension_compare",
    "dimension_sorted",
    "is_cube_ordered_chain",
    "is_cube_ordered_chain_bruteforce",
    "is_dimension_ordered_chain",
    "relative_chain",
    "unrelative_chain",
]


def dimension_compare(a: int, b: int) -> int:
    """Compare ``a`` and ``b`` under the dimension-order relation ``<_d``.

    Returns a negative number, zero, or a positive number as ``a <_d b``,
    ``a == b``, or ``b <_d a``.  With high-to-low address resolution the
    relation reduces to ordinary integer comparison (the paper notes
    this), which is how it is implemented; the formal definition in
    Section 4.1 is checked against this implementation in the tests.
    """
    return (a > b) - (a < b)


def dimension_sorted(addresses: Sequence[int]) -> list[int]:
    """Sort ``addresses`` into a dimension-ordered chain."""
    return sorted(addresses)


def relative_chain(d0: int, destinations: Sequence[int]) -> list[int]:
    """Build the ``d0``-relative dimension-ordered chain for a multicast.

    Returns the sorted sequence ``[0] + sorted(d ^ d0 for d in
    destinations)`` -- i.e. the chain in *relative* address space, in
    which the source always occupies position 0 with relative address 0.

    Raises:
        ValueError: if ``d0`` appears among the destinations or the
            destinations contain duplicates.
    """
    rel = [d ^ d0 for d in destinations]
    if 0 in rel:
        raise ValueError(f"source {d0} must not be one of the destinations")
    if len(set(rel)) != len(rel):
        raise ValueError("destination addresses must be distinct")
    return [0] + sorted(rel)


def unrelative_chain(d0: int, chain: Sequence[int]) -> list[int]:
    """Translate a relative chain back to absolute addresses."""
    return [d ^ d0 for d in chain]


def is_dimension_ordered_chain(chain: Sequence[int]) -> bool:
    """True if ``chain`` is a dimension-ordered chain (distinct, sorted)."""
    return all(chain[i] < chain[i + 1] for i in range(len(chain) - 1))


def is_cube_ordered_chain(chain: Sequence[int], n: int) -> bool:
    """True if ``chain`` is a cube-ordered chain of dimension ``n`` (Def. 5).

    A chain is cube-ordered iff the members of every subcube appear
    contiguously.  Checked recursively: split the chain by the top free
    bit; the bit values along the chain must form at most two runs, and
    each run must itself be cube-ordered one level down.  This is
    ``O(m * n)``; the test suite validates it against the ``O(4**n * m)``
    brute-force check below.
    """
    for d in chain:
        if not isinstance(d, int) or d < 0 or d >> n:
            return False
    if len(set(chain)) != len(chain):
        return False

    def rec(lo: int, hi: int, dim: int) -> bool:
        # chain[lo:hi] lies in a single subcube with `dim` free bits
        if hi - lo <= 1 or dim == 0:
            return True
        b = 1 << (dim - 1)
        first_bit = chain[lo] & b
        split = hi
        for i in range(lo + 1, hi):
            if (chain[i] & b) != first_bit:
                split = i
                break
        # after the split, the bit must never revert
        other_bit = first_bit ^ b
        for i in range(split, hi):
            if (chain[i] & b) != other_bit:
                return False
        return rec(lo, split, dim - 1) and rec(split, hi, dim - 1)

    return rec(0, len(chain), n)


def is_cube_ordered_chain_bruteforce(chain: Sequence[int], n: int) -> bool:
    """Literal transcription of Definition 5 (exponential; tests only)."""
    from repro.core.subcube import Subcube

    for d in chain:
        if not isinstance(d, int) or d < 0 or d >> n:
            return False
    if len(set(chain)) != len(chain):
        return False
    m = len(chain)
    for dim in range(n + 1):
        for mask in range(1 << (n - dim)):
            s = Subcube(n, dim, mask)
            member = [i for i in range(m) if chain[i] in s]
            if member and member[-1] - member[0] + 1 != len(member):
                return False
    return True


def chain_positions_in(chain: Sequence[int], lo: int, hi: int, bitmask: int, value: int) -> int:
    """First index in ``chain[lo:hi]`` whose masked bits differ from ``value``.

    Helper shared by the Maxport recursion and ``weighted_sort``; returns
    ``hi`` when every element matches.
    """
    for i in range(lo, hi):
        if (chain[i] & bitmask) != value:
            return i
    return hi


def validate_chain_addresses(chain: Sequence[int], n: int) -> None:
    """Raise unless every chain element is a valid ``n``-cube address."""
    for d in chain:
        require_address(d, n, "chain element")
