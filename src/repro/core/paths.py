"""Dimension-ordered (E-cube) paths and arc-disjointness (Sections 3.2-3.3).

Under E-cube routing a unicast from ``u`` to ``v`` corrects the differing
address bits in a fixed order -- strictly descending (the paper's
convention) or strictly ascending (the nCUBE-2's) -- visiting a unique
shortest path ``P(u, v)``.

An *arc* is a directed channel, identified here by the pair
``(tail_node, dim)``: the channel leaving ``tail_node`` in dimension
``dim``.  Two unicasts can only contend for a channel if their paths
share an arc, so *arc-disjoint* paths are always contention-free.
Theorems 1 and 2 of the paper give cheap sufficient conditions for
arc-disjointness; this module implements both the exact (enumerative)
check and the theorem-based predicates, which the test suite validates
against each other.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Sequence

from repro.core.addressing import delta, first_dim
from repro.core.subcube import Subcube

__all__ = [
    "Arc",
    "ResolutionOrder",
    "arcs_disjoint",
    "ecube_arcs",
    "ecube_dims",
    "ecube_path",
    "paths_arc_disjoint",
    "theorem1_guarantees_disjoint",
    "theorem2_guarantees_disjoint",
]

#: A directed channel: ``(tail_node, dim)`` is the channel from
#: ``tail_node`` to ``tail_node ^ (1 << dim)``.
Arc = tuple[int, int]


class ResolutionOrder(Enum):
    """Order in which E-cube routing resolves address bits.

    ``DESCENDING`` (high-order bits first) is the convention used in all
    of the paper's examples; ``ASCENDING`` is the nCUBE-2's.  The paper
    notes that the choice does not affect any of the results, a fact the
    test suite checks by bit-reversal conjugation.
    """

    DESCENDING = "descending"
    ASCENDING = "ascending"

    @property
    def descending(self) -> bool:
        return self is ResolutionOrder.DESCENDING


def ecube_dims(u: int, v: int, order: ResolutionOrder = ResolutionOrder.DESCENDING) -> list[int]:
    """The dimensions traversed by ``P(u, v)``, in traversal order."""
    x = u ^ v
    dims = [d for d in range(x.bit_length()) if (x >> d) & 1]
    if order.descending:
        dims.reverse()
    return dims


def ecube_path(
    u: int,
    v: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> list[int]:
    """The node sequence of the E-cube path ``P(u, v)``, inclusive of both ends.

    ``ecube_path(u, u)`` is ``[u]``.  Example (paper, Section 3.1)::

        >>> ecube_path(0b0101, 0b1110)
        [5, 13, 15, 14]
    """
    path = [u]
    cur = u
    for d in ecube_dims(u, v, order):
        cur ^= 1 << d
        path.append(cur)
    return path


def ecube_arcs(
    u: int,
    v: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> list[Arc]:
    """The directed arcs (channels) used by ``P(u, v)``, in traversal order."""
    arcs: list[Arc] = []
    cur = u
    for d in ecube_dims(u, v, order):
        arcs.append((cur, d))
        cur ^= 1 << d
    return arcs


def paths_arc_disjoint(
    p1: Sequence[int],
    p2: Sequence[int],
) -> bool:
    """Exact arc-disjointness test on two explicit node-sequence paths."""
    a1 = {
        (p1[i], delta(p1[i], p1[i + 1]))
        for i in range(len(p1) - 1)
    }
    for i in range(len(p2) - 1):
        if (p2[i], delta(p2[i], p2[i + 1])) in a1:
            return False
    return True


def arcs_disjoint(
    u: int,
    v: int,
    x: int,
    y: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> bool:
    """Exact test: are ``P(u, v)`` and ``P(x, y)`` arc-disjoint?"""
    if u == v or x == y:
        return True
    a1 = set(ecube_arcs(u, v, order))
    return not any(a in a1 for a in ecube_arcs(x, y, order))


def theorem1_guarantees_disjoint(
    x: int,
    y: int,
    v: int,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> bool:
    """Theorem 1: paths leaving a common source on different channels are
    arc-disjoint.

    Returns True if the theorem's hypothesis holds for ``P(x, y)`` and
    ``P(x, v)``, i.e. the first dimensions differ.  (A False return means
    the theorem is silent, not that the paths intersect.)
    """
    if x == y or x == v:
        return False
    return first_dim(x, y, order.descending) != first_dim(x, v, order.descending)


def theorem2_guarantees_disjoint(
    u: int,
    v: int,
    x: int,
    y: int,
    s: Subcube,
) -> bool:
    """Theorem 2: a path with both endpoints inside subcube ``S`` is
    arc-disjoint from any path with both endpoints outside ``S``.

    Returns True if the hypothesis holds for ``P(u, v)`` (inside) and
    ``P(x, y)`` (outside).  Note this relies on E-cube paths never
    leaving the smallest subcube containing their endpoints, which holds
    for the descending resolution order paired with high-bit-fixed
    subcubes (and, by bit-reversal symmetry, for the ascending order
    paired with low-bit-fixed subcubes).
    """
    return u in s and v in s and x not in s and y not in s


def all_arcs(n: int) -> Iterable[Arc]:
    """All ``n * 2**n`` directed arcs of the ``n``-cube (used by the
    channel-coverage analyses and the deadlock graph tests)."""
    for u in range(1 << n):
        for d in range(n):
            yield (u, d)
