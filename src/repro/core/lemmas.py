"""Executable statements of the paper's lemmas (Section 3.2).

The lemmas are stated as runnable predicates so the property-based test
suite can check them over the whole (small) instance space, and so that
readers can interrogate the formal claims directly::

    >>> from repro.core.lemmas import lemma1_holds, lemma2_holds
    >>> lemma1_holds(0b0101, 0b1110)
    True
"""

from __future__ import annotations

from repro.core.addressing import delta
from repro.core.paths import ResolutionOrder, ecube_path
from repro.core.subcube import Subcube

__all__ = ["lemma1_holds", "lemma2_holds"]


def lemma1_holds(x: int, y: int, order: ResolutionOrder = ResolutionOrder.DESCENDING) -> bool:
    """Lemma 1 for the path ``P(x, y)``.

    For every arc of the path travelling dimension ``d``:

    1. every node up to and including the arc's tail agrees with ``x``
       on bits ``0..d``;
    2. every node after the arc agrees with ``y`` on bits ``d+1..n-1``;
    3. ``x`` and ``y`` differ in bit ``d``.

    (Stated for descending resolution; the ascending version swaps the
    roles of the low and high bit ranges, which this implementation
    handles via the path itself.)
    """
    path = ecube_path(x, y, order)
    for i in range(len(path) - 1):
        d = delta(path[i], path[i + 1])
        if (x >> d) & 1 == (y >> d) & 1:
            return False  # condition 3
        if order.descending:
            low_mask = (1 << (d + 1)) - 1
            if any((w & low_mask) != (x & low_mask) for w in path[: i + 1]):
                return False  # condition 1
            if any((w >> (d + 1)) != (y >> (d + 1)) for w in path[i + 1 :]):
                return False  # condition 2
        else:
            if any((w >> d) != (x >> d) for w in path[: i + 1]):
                return False
            low_mask = (1 << (d + 1)) - 1
            if any((w & low_mask) != (y & low_mask) for w in path[i + 1 :]):
                return False
    return True


def lemma2_holds(s: Subcube) -> bool:
    """Lemma 2 for subcube ``s``: for all ``x <= y <= z`` with
    ``x, z in s``, also ``y in s`` (addresses are contiguous)."""
    nodes = s.nodes()
    return nodes == list(range(nodes[0], nodes[0] + len(nodes)))
