"""Topology embeddings into the hypercube (Gray codes).

Data-parallel programs (the HPF motivation of Section 1) address
processors as rings and meshes; on a hypercube those logical topologies
are embedded via (multi-dimensional) reflected Gray codes so that
logically adjacent processors are physically adjacent -- which is what
makes nearest-neighbor exchanges single-hop and contention-free.

Provided here:

- :func:`gray_code` / :func:`gray_rank` -- the reflected Gray sequence
  and its inverse;
- :func:`ring_embedding` -- a Hamiltonian cycle of the ``n``-cube;
- :func:`mesh_embedding` -- a ``2^a x 2^b`` mesh with unit-distance
  rows and columns;
- :func:`ring_neighbors` / shift helpers used by the examples.
"""

from __future__ import annotations

from repro.core.addressing import hamming

__all__ = [
    "gray_code",
    "gray_rank",
    "mesh_embedding",
    "ring_embedding",
    "ring_neighbors",
]


def gray_code(i: int) -> int:
    """The ``i``-th reflected binary Gray code: ``i ^ (i >> 1)``."""
    if i < 0:
        raise ValueError(f"index must be non-negative, got {i}")
    return i ^ (i >> 1)


def gray_rank(g: int) -> int:
    """Inverse of :func:`gray_code`: the index of code ``g``."""
    if g < 0:
        raise ValueError(f"code must be non-negative, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


def ring_embedding(n: int) -> list[int]:
    """A Hamiltonian cycle of the ``n``-cube: node addresses in ring
    order.  Consecutive entries (cyclically) are hypercube neighbors."""
    if n < 1:
        raise ValueError(f"ring embedding needs n >= 1, got {n}")
    return [gray_code(i) for i in range(1 << n)]


def ring_neighbors(node: int, n: int) -> tuple[int, int]:
    """The ring predecessor and successor of ``node`` in the embedding."""
    size = 1 << n
    i = gray_rank(node)
    if i >= size:
        raise ValueError(f"node {node} not in the {n}-cube")
    return gray_code((i - 1) % size), gray_code((i + 1) % size)


def mesh_embedding(rows_dim: int, cols_dim: int) -> list[list[int]]:
    """Embed a ``2^rows_dim x 2^cols_dim`` mesh into the
    ``(rows_dim + cols_dim)``-cube.

    Returns the node address for each (row, col); horizontally and
    vertically adjacent mesh cells are hypercube neighbors (product of
    two Gray sequences).
    """
    if rows_dim < 0 or cols_dim < 0:
        raise ValueError("mesh dimensions must be non-negative")
    cols = 1 << cols_dim
    return [
        [(gray_code(r) << cols_dim) | gray_code(c) for c in range(cols)]
        for r in range(1 << rows_dim)
    ]


def is_unit_distance_path(path: list[int]) -> bool:
    """True if consecutive path entries are hypercube neighbors."""
    return all(hamming(a, b) == 1 for a, b in zip(path, path[1:]))
