"""Worker watchdogs, retry budgets, and poison-point quarantine.

The sweep engine's original failure story was all-or-nothing: a worker
crash cost its chunk (transparently re-run in-process), but a *hung*
worker stalled the whole sweep forever, and a repeatedly crashing
worker re-ran its chunk in the parent on the first failure, losing the
benefit of the pool.  This module supplies the policy objects the
engine uses to do better:

- :class:`RetryPolicy` -- a capped exponential backoff, the same shape
  as the source-retry backoff in :mod:`repro.faults.sim`
  (``min(base * 2**(attempt-1), cap)``): simulated senders and real
  worker pools face the same thundering-herd physics.
- :class:`WatchdogConfig` -- per-point soft/hard timeouts measured
  against **worker heartbeats** (each worker beats before every point),
  so a slow point triggers a soft warning, and a genuinely hung one is
  killed and requeued.
- :class:`PointTracker` -- per-point failure accounting with
  quarantine: a point whose chunk has failed ``quarantine_after`` times
  is a *poison point*; it stops being requeued to the pool and runs
  in-process instead, where a deterministic error surfaces exactly as
  it would serially.

Every decision these objects drive is observable: the engine emits
``sim.resilience.*`` metrics and ``kind="resilience-event"`` telemetry
records (see docs/RESILIENCE.md and docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.obs import sink as _telemetry_sink
from repro.obs import trace_spans
from repro.obs.telemetry import RunRecord, new_run_id

__all__ = [
    "PointTracker",
    "RetryPolicy",
    "WatchdogConfig",
    "emit_resilience_event",
]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff between pool retry rounds.

    Attempt ``k`` (1-based) waits ``min(base * 2**(k-1), cap)`` seconds
    -- the backoff shape of :func:`repro.faults.sim.simulate_degraded_multicast`,
    scaled from simulated microseconds to host seconds.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s)


@dataclass(frozen=True, slots=True)
class WatchdogConfig:
    """Tuning for the engine's hung-worker watchdog.

    Attributes:
        soft_timeout_s: heartbeat age after which a chunk is flagged
            (``sim.resilience.soft_timeouts``) but left running.
        hard_timeout_s: heartbeat age after which the pool is declared
            hung: its processes are killed and unfinished chunks are
            requeued under the retry budget.
        poll_s: how often the parent wakes to check heartbeats.
        retry: backoff policy between pool rounds.
        quarantine_after: chunk failures (crash or hang) after which a
            point is poison and runs in-process only.
        pool_loss_limit: consecutive pool losses (hang kills or broken
            pools) after which the engine degrades to in-process
            execution for everything outstanding.
    """

    soft_timeout_s: float = 30.0
    hard_timeout_s: float = 120.0
    poll_s: float = 0.1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    quarantine_after: int = 3
    pool_loss_limit: int = 3

    def __post_init__(self) -> None:
        if self.hard_timeout_s < self.soft_timeout_s:
            raise ValueError(
                f"hard timeout ({self.hard_timeout_s}s) must be >= "
                f"soft timeout ({self.soft_timeout_s}s)"
            )
        if self.poll_s <= 0:
            raise ValueError(f"poll_s must be > 0, got {self.poll_s}")
        if self.quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {self.quarantine_after}")
        if self.pool_loss_limit < 1:
            raise ValueError(f"pool_loss_limit must be >= 1, got {self.pool_loss_limit}")

    @classmethod
    def from_env(cls) -> "WatchdogConfig":
        """Defaults overridable via ``REPRO_WATCHDOG_{SOFT,HARD}_S`` and
        ``REPRO_WATCHDOG_RETRIES`` (for ops tuning without code)."""
        defaults = cls()
        soft = float(os.environ.get("REPRO_WATCHDOG_SOFT_S", defaults.soft_timeout_s))
        hard = float(os.environ.get("REPRO_WATCHDOG_HARD_S", defaults.hard_timeout_s))
        retries = int(
            os.environ.get("REPRO_WATCHDOG_RETRIES", defaults.retry.max_retries)
        )
        return cls(
            soft_timeout_s=soft,
            hard_timeout_s=max(hard, soft),
            retry=RetryPolicy(max_retries=retries),
        )


class PointTracker:
    """Per-point failure accounting and poison-point quarantine."""

    def __init__(self, quarantine_after: int) -> None:
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")
        self.quarantine_after = quarantine_after
        self.failures: dict[int, int] = {}
        self.quarantined: set[int] = set()

    def record_failure(self, index: int) -> bool:
        """Count one failure for point ``index``; True once quarantined."""
        count = self.failures.get(index, 0) + 1
        self.failures[index] = count
        if count >= self.quarantine_after:
            self.quarantined.add(index)
            return True
        return False

    def is_quarantined(self, index: int) -> bool:
        return index in self.quarantined

    @property
    def total_failures(self) -> int:
        return sum(self.failures.values())


def emit_resilience_event(event: str, **details: object) -> None:
    """Write one ``kind="resilience-event"`` record to the active sink.

    ``event`` names what happened (``"hung-pool-killed"``,
    ``"point-quarantined"``, ``"pool-degraded"``, ``"sweep-resumed"``,
    ``"cache-quarantined"``); ``details`` is the free-form payload.
    No-op when telemetry is disabled.  While a tracer is installed the
    event additionally lands as a zero-duration ``resilience.<event>``
    span, so watchdog kills, retries, and resumes show up on the traced
    sweep timeline.
    """
    if trace_spans.get_tracer() is not None:
        attrs = {
            k: v if isinstance(v, (bool, int, float, str, type(None))) else str(v)
            for k, v in details.items()
        }
        trace_spans.instant(f"resilience.{event}", **attrs)
    sink = _telemetry_sink.get_sink()
    if sink is None:
        return
    sink.write(
        RunRecord(
            run_id=new_run_id(),
            kind="resilience-event",
            n=0,
            algorithm=event,
            extra={"event": event, **details},
            trace_id=trace_spans.current_trace_id(),
        )
    )
