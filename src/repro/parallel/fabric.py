"""The distributed sweep fabric: pluggable chunk transports.

The sweep engine (:mod:`repro.parallel.engine`) fans point chunks over
*some* pool of workers and absorbs ``(results, telemetry, metrics,
spans)`` tuples back.  This module abstracts *which* pool behind a
:class:`Communicator`: a start/stop lifecycle plus one operation --
:meth:`Communicator.run_round` -- that executes a batch of chunks and
reports which chunks failed retryably (a crashed or hung worker),
which failed fatally (the point function itself raised), and whether
the backend lost capacity doing it.  Two backends:

- :class:`LocalCommunicator` -- the original single-host
  :class:`~concurrent.futures.ProcessPoolExecutor` machinery,
  refactored in unchanged: per-chunk telemetry buffering, shared
  manager-dict heartbeats, hung-pool kill.  This is the default and
  the degradation target.
- :class:`TcpCoordinator` -- a stdlib-only TCP coordinator for
  multi-host sweeps.  Remote hosts run ``repro-hypercube worker
  --connect HOST:PORT`` (:mod:`repro.parallel.worker`); each connected
  worker executes one chunk at a time, so a fleet of unequal hosts
  load-balances itself.  Workers may join at any time, mid-sweep
  included.

Fleet-scope robustness reuses the engine's single-host machinery at
the next level up:

- **Per-host heartbeats.**  Every worker link carries liveness beats;
  a link whose beat age passes the watchdog's soft timeout is flagged
  (``sim.fabric.soft_timeouts``), and one past the hard timeout is
  declared dead -- its socket is closed (which makes a busy worker
  process exit rather than burn a CPU on an abandoned chunk) and its
  chunk is requeued.
- **Dead-host detection -> requeue.**  A vanished connection (SIGKILL,
  OOM, network partition) surfaces as an EOF on the reader thread; the
  host's in-flight chunk returns to the round's queue immediately.
  Requeued points flow through the engine's existing capped-backoff
  :class:`~repro.parallel.resilience.RetryPolicy` and
  :class:`~repro.parallel.resilience.PointTracker` quarantine -- point
  indices are transport-agnostic, so a poison point is quarantined no
  matter how many hosts it has crashed.
- **Graceful degradation.**  When the last remote host dies (or none
  ever connects), the engine swaps the coordinator for a
  :class:`LocalCommunicator` and the sweep continues on the local
  process pool, bit-identically.
- **Observability.**  Every failover decision is a ``sim.fabric.*``
  metric, a ``kind="fabric-event"`` telemetry record, and (while
  tracing) a ``fabric.<event>`` instant span --
  :func:`emit_fabric_event` mirrors
  :func:`~repro.parallel.resilience.emit_resilience_event` one level
  up the stack.

The wire protocol (:func:`send_frame` / :func:`recv_frame`) is
length-prefixed pickle over a trusted network -- the same trust model
as :mod:`multiprocessing` itself, documented in docs/RESILIENCE.md.
Results cross the wire as the exact objects the point function
returned (pickle round-trips them bit-identically), which is what
makes a distributed sweep byte-identical to a serial one.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import pickle
import queue
import socket
import struct
import threading
import time as _time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.obs import sink as _sink_mod
from repro.obs import trace_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import MemorySink
from repro.obs.telemetry import RunRecord, new_run_id
from repro.parallel.cache import ScheduleCache, activate_cache, get_active_cache
from repro.parallel.resilience import WatchdogConfig, emit_resilience_event

__all__ = [
    "Communicator",
    "FabricConfig",
    "LocalCommunicator",
    "RoundOutcome",
    "TcpCoordinator",
    "emit_fabric_event",
    "recv_frame",
    "send_frame",
]

#: Chunk payloads are small (a function reference plus primitive
#: specs); anything past this is a protocol error, not a sweep.
MAX_FRAME_BYTES = 64 << 20

_LEN = struct.Struct(">Q")


def send_frame(sock: socket.socket, payload: object, lock: threading.Lock | None = None) -> None:
    """Write one length-prefixed pickled frame to ``sock``.

    ``lock`` serializes concurrent senders on a shared socket (a
    worker's main loop and its heartbeat thread).
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}")
    data = _LEN.pack(len(blob)) + blob
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    parts = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            return None
        parts.append(chunk)
        count -= len(chunk)
    return b"".join(parts)


def recv_frame(sock: socket.socket) -> object | None:
    """Read one frame, or ``None`` on a clean or torn EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    blob = _recv_exact(sock, length)
    if blob is None:
        return None
    return pickle.loads(blob)


def emit_fabric_event(event: str, **details: object) -> None:
    """One ``kind="fabric-event"`` record (and, while tracing, a
    ``fabric.<event>`` instant) per fleet-level decision.

    ``event`` names what happened (``"worker-joined"``,
    ``"host-lost"``, ``"host-timeout"``, ``"fabric-degraded-local"``,
    ``"fabric-started"``, ``"fabric-stopped"``); ``details`` is the
    free-form payload.  No-op when telemetry is disabled.
    """
    if trace_spans.get_tracer() is not None:
        attrs = {
            k: v if isinstance(v, (bool, int, float, str, type(None))) else str(v)
            for k, v in details.items()
        }
        trace_spans.instant(f"fabric.{event}", **attrs)
    sink = _sink_mod.get_sink()
    if sink is None:
        return
    sink.write(
        RunRecord(
            run_id=new_run_id(),
            kind="fabric-event",
            n=0,
            algorithm=event,
            extra={"event": event, **details},
            trace_id=trace_spans.current_trace_id(),
        )
    )


@dataclass(frozen=True, slots=True)
class FabricConfig:
    """Coordinator-side tuning for a TCP sweep fabric.

    Attributes:
        bind_host: interface the coordinator listens on.
        bind_port: listen port (``0`` -> ephemeral; the bound port is
            on :attr:`TcpCoordinator.port` after ``start()``).
        min_workers: how many workers :meth:`TcpCoordinator.wait_for_workers`
            waits for before the sweep starts dispatching (late joiners
            are still welcome).
        wait_s: how long to wait for ``min_workers`` before proceeding
            with however many (possibly zero) have joined.
        cache_url: advertised shared-cache service URL (the PR 6
            planning service); workers that did not pass their own
            ``--cache-url`` adopt it at handshake.
    """

    bind_host: str = "127.0.0.1"
    bind_port: int = 0
    min_workers: int = 1
    wait_s: float = 15.0
    cache_url: str | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.bind_port <= 65535:
            raise ValueError(f"bind_port must be in [0, 65535], got {self.bind_port}")
        if self.min_workers < 0:
            raise ValueError(f"min_workers must be >= 0, got {self.min_workers}")
        if self.wait_s < 0:
            raise ValueError(f"wait_s must be >= 0, got {self.wait_s}")


@dataclass(slots=True)
class RoundOutcome:
    """What one :meth:`Communicator.run_round` pass accomplished.

    ``retryable`` chunks failed for transport-level reasons (crashed,
    hung, or vanished workers) and may be requeued under the retry
    budget; ``fatal`` chunks raised inside the point function (they go
    to in-process execution, where the error surfaces exactly as it
    would serially); ``lost`` reports that the backend lost capacity
    (a killed pool, a dead host) during the pass.
    """

    retryable: list
    fatal: list
    lost: bool


class Communicator(abc.ABC):
    """A chunk transport: lifecycle + one round of dispatch/collect.

    The engine treats every backend identically: submit the round's
    chunks, absorb whatever comes home, sort the casualties into
    :class:`RoundOutcome`.  ``absorb`` is always invoked on the calling
    thread, so journal appends and sink writes stay single-writer.
    """

    #: short transport name for metrics and event payloads.
    name: str = "abstract"

    def start(self) -> None:
        """Acquire transport resources (sockets, threads)."""

    def stop(self) -> None:
        """Release transport resources; idempotent."""

    @property
    def healthy(self) -> bool:
        """Whether the backend still has capacity worth dispatching to."""
        return True

    def describe(self) -> dict:
        """Telemetry payload identifying this transport."""
        return {"transport": self.name}

    @abc.abstractmethod
    def run_round(
        self,
        fn: Callable,
        chunks: list[list[tuple[int, object]]],
        absorb: Callable,
        done: Sequence[bool],
        trace_id: str | None = None,
    ) -> RoundOutcome:
        """Execute one batch of chunks, absorbing completions inline."""

    def __enter__(self) -> "Communicator":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


# -- the single-host backend (the original process pool) ---------------


def _worker_init(cache_dir: str | None) -> None:
    """Pool initializer: give the worker its own cache (fresh memory
    layer, shared disk layer) so parent state never leaks in."""
    activate_cache(ScheduleCache(cache_dir))


def run_chunk(
    fn: Callable,
    chunk: Sequence[tuple[int, object]],
    chunk_id: int | None = None,
    heartbeats=None,
    trace_id: str | None = None,
) -> tuple[list[tuple[int, object]], list[dict], dict[str, dict], dict | None]:
    """Execute one chunk of (index, spec) pairs inside a worker.

    The worker side of *every* backend -- pool processes call it via
    the executor, TCP workers call it per received chunk -- so
    telemetry, metrics, and tracing behave identically no matter where
    a point ran.  Telemetry is buffered in a :class:`MemorySink`
    (never written directly from the worker -- a dead worker must not
    leave partial or duplicate records) and cache metrics go to a
    per-chunk registry so the parent can merge exact deltas.  When the
    parent supplied a ``heartbeats`` mapping (watchdog mode), the
    worker beats before every point so the parent can tell slow from
    hung.  When the parent is tracing (``trace_id``), the worker runs
    its own tracer -- seeded from the parent's trace id, the chunk id,
    and the worker pid so span ids never collide across chunks -- and
    ships the span snapshot home in the return tuple for replay,
    exactly like the telemetry buffer.
    """
    registry = MetricsRegistry()
    cache = get_active_cache()
    prev_cache_metrics = cache.metrics if cache is not None else None
    if cache is not None:
        cache.metrics = registry
    buffer = MemorySink()
    prev_sink = _sink_mod.configure(buffer)
    worker_tracer = None
    prev_tracer = None
    chunk_span = None
    if trace_id is not None:
        worker_tracer = trace_spans.Tracer(
            trace_id=trace_spans.derive_trace_id(trace_id, "chunk", chunk_id, os.getpid()),
            label=f"chunk-{chunk_id}",
        )
        prev_tracer = trace_spans.configure_tracing(worker_tracer)
        chunk_span = worker_tracer.start_span(
            "parallel.chunk", {"chunk": chunk_id, "points": len(chunk)}
        )

    def beat() -> None:
        if heartbeats is not None:
            try:
                # wall clock on purpose: heartbeat ages are compared in
                # the *parent* process, and Python only guarantees the
                # monotonic clock is comparable within one process
                # repro: lint-ok[REP002] cross-process heartbeat timestamps need a shared clock
                heartbeats[chunk_id] = _time.time()
            except Exception:
                # manager gone: the parent is tearing us down; count it
                # so the suppression shows up in the merged metrics if
                # this chunk still makes it home
                registry.counter("sim.resilience.heartbeat_errors").inc()

    try:
        results = []
        for index, spec in chunk:
            beat()
            results.append((index, fn(spec)))
    finally:
        if worker_tracer is not None:
            if chunk_span is not None:
                worker_tracer.end_span(chunk_span)
            trace_spans.configure_tracing(prev_tracer)
        _sink_mod.configure(prev_sink)
        if cache is not None:
            cache.metrics = prev_cache_metrics
    trace_snapshot = worker_tracer.snapshot() if worker_tracer is not None else None
    return (
        results,
        [r.to_dict() for r in buffer.records],
        registry.snapshot(),
        trace_snapshot,
    )


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool's workers (hung-pool containment).

    Reaches into the executor because the public API has no way to kill
    a worker; a terminated process unblocks the executor's own joins.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        # repro: lint-ok[REP004] best-effort teardown of an already-dead pool; no registry in scope
        except Exception:  # pragma: no cover - best-effort teardown
            pass


class LocalCommunicator(Communicator):
    """The original single-host process pool behind the fabric ABC.

    One :class:`~concurrent.futures.ProcessPoolExecutor` per round (a
    fresh pool per retry round is what contains a poisoned or hung
    pool), heartbeats through a shared manager dict, hung-pool kill
    and requeue under the watchdog.  Behavior is exactly the
    pre-fabric engine's; the chaos and bit-identity suites pin it.
    """

    name = "local"

    def __init__(
        self,
        jobs: int,
        cache_dir: str | None = None,
        watchdog: WatchdogConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache_dir = cache_dir
        self.watchdog = watchdog
        self.metrics = metrics

    def describe(self) -> dict:
        return {"transport": self.name, "jobs": self.jobs}

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def run_round(
        self,
        fn: Callable,
        chunks: list[list[tuple[int, object]]],
        absorb: Callable,
        done: Sequence[bool],
        trace_id: str | None = None,
    ) -> RoundOutcome:
        wd = self.watchdog
        retryable: list[list[tuple[int, object]]] = []
        fatal: list[list[tuple[int, object]]] = []
        pool_lost = False
        manager = None
        heartbeats = None
        soft_flagged: set[int] = set()
        try:
            if wd is not None:
                manager = multiprocessing.Manager()
                heartbeats = manager.dict()
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)) or 1,
                initializer=_worker_init,
                initargs=(self.cache_dir,),
            ) as pool:
                pending: dict[Future, tuple[int, list[tuple[int, object]]]] = {}
                for chunk_id, chunk in enumerate(chunks):
                    future = pool.submit(run_chunk, fn, chunk, chunk_id, heartbeats, trace_id)
                    pending[future] = (chunk_id, chunk)
                hung = False
                while pending and not hung:
                    timeout = wd.poll_s if wd is not None else None
                    finished, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
                    for future in finished:
                        _, chunk = pending.pop(future)
                        try:
                            absorb(*future.result())
                        except BrokenProcessPool:
                            self._count("sim.parallel.worker_failures")
                            pool_lost = True
                            retryable.append(chunk)
                        except Exception:
                            self._count("sim.parallel.worker_failures")
                            if wd is None:
                                # legacy behavior: any failure falls back
                                # in-process (where a deterministic error
                                # re-raises exactly as it would serially)
                                retryable.append(chunk)
                            else:
                                fatal.append(chunk)
                    if wd is not None and pending:
                        # repro: lint-ok[REP002] compared against worker wall-clock heartbeats
                        now = _time.time()
                        for chunk_id, _chunk in pending.values():
                            try:
                                beat = heartbeats.get(chunk_id)  # type: ignore[union-attr]
                            except Exception:  # pragma: no cover - manager died
                                self._count("sim.resilience.heartbeat_errors")
                                beat = None
                            if beat is None:
                                continue  # not started yet; cannot be hung
                            age = now - float(beat)
                            if age > wd.soft_timeout_s and chunk_id not in soft_flagged:
                                soft_flagged.add(chunk_id)
                                self._count("sim.resilience.soft_timeouts")
                            if age > wd.hard_timeout_s:
                                hung = True
                        if hung:
                            self._count("sim.resilience.hung_chunks", float(len(pending)))
                            emit_resilience_event(
                                "hung-pool-killed",
                                pending_chunks=len(pending),
                                hard_timeout_s=wd.hard_timeout_s,
                            )
                            for future in pending:
                                future.cancel()
                            _kill_pool_processes(pool)
                            retryable.extend(chunk for _, chunk in pending.values())
                            pending = {}
                            pool_lost = True
                if hung:
                    pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            # the pool itself failed (submission error, fork failure):
            # everything not yet absorbed may be requeued
            self._count("sim.parallel.worker_failures")
            pool_lost = True
            claimed = {id(chunk) for chunk in retryable} | {id(chunk) for chunk in fatal}
            retryable.extend(
                chunk
                for chunk in chunks
                if id(chunk) not in claimed and not all(done[i] for i, _ in chunk)
            )
        finally:
            if manager is not None:
                manager.shutdown()
        return RoundOutcome(retryable=retryable, fatal=fatal, lost=pool_lost)


# -- the multi-host backend --------------------------------------------


class _WorkerLink:
    """Coordinator-side state for one connected worker host."""

    __slots__ = (
        "worker_id",
        "sock",
        "send_lock",
        "last_seen",
        "soft_flagged",
        "chunk",
        "chunk_id",
        "chunks_done",
        "alive",
    )

    def __init__(self, worker_id: str, sock: socket.socket) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.send_lock = threading.Lock()
        # monotonic receipt times: beat *ages* are computed and
        # compared only inside the coordinator process
        self.last_seen = _time.monotonic()
        self.soft_flagged = False
        self.chunk: list | None = None
        self.chunk_id: int | None = None
        self.chunks_done = 0
        self.alive = True


class TcpCoordinator(Communicator):
    """Multi-host chunk transport over length-prefixed pickle frames.

    The coordinator owns a listening socket for the whole sweep; an
    accept thread admits workers at any time (one reader thread per
    link funnels frames into a single inbox queue, so
    :meth:`run_round` -- and therefore ``absorb``, the journal, and
    the telemetry sink -- runs entirely on the engine's thread).
    Each worker executes one chunk at a time; faster hosts simply ask
    more often, so heterogeneous fleets balance without tuning.
    """

    name = "tcp"

    def __init__(
        self,
        config: FabricConfig,
        watchdog: WatchdogConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.watchdog = watchdog if watchdog is not None else WatchdogConfig.from_env()
        self.metrics = metrics
        self.port: int | None = None
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._links: dict[str, _WorkerLink] = {}
        self._links_lock = threading.Lock()
        self._inbox: "queue.Queue[tuple[str, dict]]" = queue.Queue()
        self._joined = threading.Event()
        self._stopping = False

    # -- metrics helpers ----------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge_workers(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("sim.fabric.workers_connected").set(float(self.worker_count))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._server is not None:
            return
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.config.bind_host, self.config.bind_port))
        server.listen(32)
        self._server = server
        self.port = server.getsockname()[1]
        self._stopping = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        self._accept_thread.start()
        emit_fabric_event(
            "fabric-started", host=self.config.bind_host, port=self.port
        )

    def stop(self) -> None:
        if self._server is None:
            return
        self._stopping = True
        with self._links_lock:
            links = list(self._links.values())
        for link in links:
            try:
                send_frame(link.sock, {"type": "shutdown"}, link.send_lock)
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
        try:
            self._server.close()
        except OSError:  # pragma: no cover
            pass
        self._server = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        emit_fabric_event("fabric-stopped", workers=len(links))
        with self._links_lock:
            self._links.clear()
        self._gauge_workers()

    # -- worker admission ---------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        server = self._server
        while not self._stopping:
            try:
                sock, _addr = server.accept()
            except OSError:
                return  # listener closed: coordinator stopping
            threading.Thread(
                target=self._admit, args=(sock,), name="fabric-admit", daemon=True
            ).start()

    def _admit(self, sock: socket.socket) -> None:
        """Handshake one connection, register the link, start its reader."""
        try:
            sock.settimeout(10.0)
            hello = recv_frame(sock)
            if not isinstance(hello, dict) or hello.get("type") != "hello":
                sock.close()
                return
            sock.settimeout(None)
        except (OSError, ValueError, pickle.UnpicklingError):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return
        worker_id = str(hello.get("worker_id") or f"worker-{id(sock):x}")
        link = _WorkerLink(worker_id, sock)
        with self._links_lock:
            # a reconnecting id displaces its stale predecessor
            stale = self._links.pop(worker_id, None)
            self._links[worker_id] = link
        if stale is not None:
            try:
                stale.sock.close()
            except OSError:  # pragma: no cover
                pass
        try:
            send_frame(
                sock,
                {"type": "welcome", "cache_url": self.config.cache_url},
                link.send_lock,
            )
        except OSError:
            self._drop_link(link, "handshake-failed")
            return
        self._count("sim.fabric.workers_joined")
        self._gauge_workers()
        emit_fabric_event(
            "worker-joined",
            worker=worker_id,
            host=hello.get("host"),
            pid=hello.get("pid"),
        )
        self._joined.set()
        threading.Thread(
            target=self._reader_loop,
            args=(link,),
            name=f"fabric-read-{worker_id}",
            daemon=True,
        ).start()

    def _reader_loop(self, link: _WorkerLink) -> None:
        while True:
            try:
                msg = recv_frame(link.sock)
            except (OSError, ValueError, pickle.UnpicklingError, EOFError):
                msg = None
            if msg is None:
                self._inbox.put((link.worker_id, {"type": "gone"}))
                return
            link.last_seen = _time.monotonic()
            if isinstance(msg, dict) and msg.get("type") != "heartbeat":
                self._inbox.put((link.worker_id, msg))

    def wait_for_workers(self, min_workers: int | None = None, wait_s: float | None = None) -> int:
        """Block until ``min_workers`` links exist or ``wait_s`` runs
        out; returns however many are connected either way."""
        target = self.config.min_workers if min_workers is None else min_workers
        budget = self.config.wait_s if wait_s is None else wait_s
        deadline = _time.monotonic() + budget
        while self.worker_count < target:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                break
            self._joined.clear()
            self._joined.wait(timeout=min(remaining, 0.25))
        return self.worker_count

    @property
    def worker_count(self) -> int:
        with self._links_lock:
            return sum(1 for link in self._links.values() if link.alive)

    @property
    def healthy(self) -> bool:
        return self.worker_count > 0

    def describe(self) -> dict:
        return {
            "transport": self.name,
            "host": self.config.bind_host,
            "port": self.port,
            "workers": self.worker_count,
        }

    # -- failure containment ------------------------------------------

    def _drop_link(self, link: _WorkerLink, reason: str) -> list | None:
        """Remove a dead host; returns its orphaned chunk, if any."""
        with self._links_lock:
            current = self._links.get(link.worker_id)
            if current is link:
                del self._links[link.worker_id]
        link.alive = False
        try:
            # closing the socket is also the worker-side kill switch: a
            # busy worker notices on its next beat and exits rather
            # than finish a chunk nobody will accept
            link.sock.close()
        except OSError:  # pragma: no cover
            pass
        orphan, link.chunk, link.chunk_id = link.chunk, None, None
        self._count("sim.fabric.hosts_lost")
        self._gauge_workers()
        emit_fabric_event(
            "host-lost",
            worker=link.worker_id,
            reason=reason,
            orphaned_points=len(orphan) if orphan else 0,
            chunks_done=link.chunks_done,
        )
        return orphan

    # -- the round -----------------------------------------------------

    def run_round(
        self,
        fn: Callable,
        chunks: list[list[tuple[int, object]]],
        absorb: Callable,
        done: Sequence[bool],
        trace_id: str | None = None,
    ) -> RoundOutcome:
        wd = self.watchdog
        pending: deque[tuple[int, list]] = deque(enumerate(chunks))
        retryable: list[list[tuple[int, object]]] = []
        fatal: list[list[tuple[int, object]]] = []
        busy: dict[str, _WorkerLink] = {}

        def dispatch() -> None:
            with self._links_lock:
                idle = [
                    link
                    for link in self._links.values()
                    if link.alive and link.chunk is None
                ]
            for link in idle:
                if not pending:
                    return
                chunk_id, chunk = pending.popleft()
                try:
                    send_frame(
                        link.sock,
                        {
                            "type": "chunk",
                            "chunk_id": chunk_id,
                            "fn": fn,
                            "chunk": list(chunk),
                            "trace_id": trace_id,
                        },
                        link.send_lock,
                    )
                except (OSError, ValueError, pickle.PicklingError):
                    pending.appendleft((chunk_id, chunk))
                    self._drop_link(link, "send-failed")
                    continue
                link.chunk = list(chunk)
                link.chunk_id = chunk_id
                link.soft_flagged = False
                busy[link.worker_id] = link
                self._count("sim.fabric.chunks_dispatched")

        def check_heartbeats() -> None:
            now = _time.monotonic()
            for worker_id, link in list(busy.items()):
                if not link.alive:
                    continue
                age = now - link.last_seen
                if age > wd.soft_timeout_s and not link.soft_flagged:
                    link.soft_flagged = True
                    self._count("sim.fabric.soft_timeouts")
                    emit_fabric_event(
                        "host-slow", worker=worker_id, beat_age_s=round(age, 3)
                    )
                if age > wd.hard_timeout_s:
                    self._count("sim.fabric.hard_timeouts")
                    emit_fabric_event(
                        "host-timeout", worker=worker_id, beat_age_s=round(age, 3)
                    )
                    orphan = self._drop_link(link, "heartbeat-timeout")
                    busy.pop(worker_id, None)
                    if orphan is not None:
                        retryable.append(orphan)
                        self._count("sim.fabric.requeued_chunks")

        while pending or busy:
            dispatch()
            if not busy and pending and self.worker_count == 0:
                break  # no one to give work to; the engine degrades
            try:
                worker_id, msg = self._inbox.get(timeout=wd.poll_s)
            except queue.Empty:
                check_heartbeats()
                continue
            link = busy.get(worker_id)
            kind = msg.get("type")
            if kind == "gone":
                with self._links_lock:
                    gone = self._links.get(worker_id)
                if gone is not None and gone.alive:
                    orphan = self._drop_link(gone, "connection-lost")
                    if orphan is not None:
                        retryable.append(orphan)
                        self._count("sim.fabric.requeued_chunks")
                busy.pop(worker_id, None)
            elif kind == "result" and link is not None and msg.get("chunk_id") == link.chunk_id:
                chunk = link.chunk
                link.chunk, link.chunk_id = None, None
                link.chunks_done += 1
                busy.pop(worker_id, None)
                try:
                    absorb(*msg["payload"])
                    self._count("sim.fabric.chunks_completed")
                    self._count("sim.fabric.points_remote", float(len(chunk or ())))
                except Exception:
                    self._count("sim.parallel.worker_failures")
                    fatal.append(chunk)  # type: ignore[arg-type]
            elif kind == "error" and link is not None and msg.get("chunk_id") == link.chunk_id:
                chunk = link.chunk
                link.chunk, link.chunk_id = None, None
                link.chunks_done += 1
                busy.pop(worker_id, None)
                self._count("sim.parallel.worker_failures")
                self._count("sim.fabric.chunk_errors")
                emit_fabric_event(
                    "chunk-error", worker=worker_id, error=str(msg.get("error"))[:200]
                )
                fatal.append(chunk)  # type: ignore[arg-type]
            check_heartbeats()

        # whatever never found a worker is retryable, not lost work
        retryable.extend(chunk for _, chunk in pending)
        lost = self.worker_count == 0
        return RoundOutcome(retryable=retryable, fatal=fatal, lost=lost)
