"""Remote schedule-cache tier for fabric workers.

A multi-host sweep loses the warm-cache economics of a shared
``cache_dir``: each worker host starts cold and recomputes schedule
tables the fleet has already built.  This module restores the shared
tier over HTTP -- the schedule-planning service (:mod:`repro.service`)
exposes its content-addressed entries at ``GET/PUT /v1/cache/<key>``,
and :class:`TieredCache` extends the ordinary two-layer
:class:`~repro.parallel.cache.ScheduleCache` with that service as a
third layer: memory, then local disk, then the fleet.

Keys are the same SHA-256 content addresses everywhere
(:func:`repro.parallel.cache.cache_key`), so a sweep on any host warms
the service for every other host, and vice versa.  Remote reads are
checksum-validated exactly like disk reads -- the transported envelope
carries the same ``checksum`` field the disk envelope does, and a
mismatch is treated as a miss (counted in
``sim.fabric.remote_cache_errors``), never stored.

The remote layer is strictly an optimization and strictly best-effort:
a slow, dead, or draining cache service costs latency budgeted by
``timeout_s`` and then nothing -- a :class:`RemoteCacheClient` trips a
circuit breaker after ``max_failures`` consecutive transport errors
and the worker quietly degrades to its local two layers for the rest
of the sweep.  Values are pure functions of their keys, so skipping
the remote tier can never change a result, only its cost.
"""

from __future__ import annotations

import http.client
import json
import re
import urllib.parse

from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import ScheduleCache, _value_checksum

__all__ = ["RemoteCacheClient", "TieredCache"]

#: Content-addressed keys are full SHA-256 hex digests.
KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class RemoteCacheClient:
    """Checksum-validating HTTP client for the service cache endpoints.

    Transport failures (refused, reset, timeout) count toward a
    circuit breaker: after ``max_failures`` consecutive errors the
    client disables itself (``healthy`` goes False) and every further
    call is an immediate no-op, so one dead service cannot tax every
    lookup of a long sweep.  A successful call resets the count.
    Protocol-level misses (404) are not failures.
    """

    def __init__(self, base_url: str, timeout_s: float = 2.0, max_failures: int = 3) -> None:
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"remote cache URL must be http://, got {base_url!r}")
        if not parsed.hostname or not parsed.port:
            raise ValueError(f"remote cache URL needs host:port, got {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port
        self.timeout_s = timeout_s
        self.max_failures = max_failures
        self.failures = 0
        self.fetches = 0
        self.pushes = 0
        self.errors = 0

    @property
    def healthy(self) -> bool:
        return self.failures < self.max_failures

    def describe(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _request(self, method: str, path: str, body: bytes | None = None) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            headers = {"Content-Type": "application/json"} if body is not None else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            return response.status, payload
        finally:
            conn.close()

    def fetch(self, key: str) -> object | None:
        """The fleet's value for ``key``, or ``None`` (miss, damage, or
        a tripped breaker)."""
        if not self.healthy:
            return None
        try:
            status, payload = self._request("GET", f"/v1/cache/{key}")
        except (OSError, http.client.HTTPException):
            self.failures += 1
            self.errors += 1
            return None
        self.failures = 0
        if status != 200:
            return None  # miss (404) or a service refusing cache traffic
        try:
            doc = json.loads(payload)
            value = doc["value"]
            intact = doc.get("key") == key and _value_checksum(value) == doc.get("checksum")
        except (ValueError, KeyError, TypeError):
            intact = False
            value = None
        if not intact:
            self.errors += 1
            return None
        self.fetches += 1
        return value

    def push(self, key: str, value: object) -> bool:
        """Best-effort publish of a locally computed value to the fleet."""
        if not self.healthy:
            return False
        body = json.dumps(
            {"key": key, "checksum": _value_checksum(value), "value": value},
            separators=(",", ":"),
        ).encode("utf-8")
        try:
            status, _ = self._request("PUT", f"/v1/cache/{key}", body)
        except (OSError, http.client.HTTPException):
            self.failures += 1
            self.errors += 1
            return False
        self.failures = 0
        if status not in (200, 201, 204):
            self.errors += 1
            return False
        self.pushes += 1
        return True


class TieredCache(ScheduleCache):
    """A :class:`ScheduleCache` with the fleet cache as a third layer.

    Reads: memory -> local disk -> remote service (a remote hit is
    stored locally, so each key crosses the wire at most once per
    host).  Writes: local layers synchronously, remote best-effort --
    push failures cost nothing but the lost warmth.
    """

    def __init__(
        self,
        cache_dir=None,
        metrics: MetricsRegistry | None = None,
        remote: RemoteCacheClient | None = None,
    ) -> None:
        super().__init__(cache_dir, metrics)
        self.remote = remote
        self.remote_hits = 0

    def get(self, key: str) -> object | None:
        value = super().get(key)
        if value is not None or self.remote is None:
            return value
        errors_before = self.remote.errors
        value = self.remote.fetch(key)
        if self.remote.errors > errors_before:
            self._count_full("sim.fabric.remote_cache_errors")
        if value is None:
            return None
        self.remote_hits += 1
        self._count_full("sim.fabric.remote_cache_hits")
        # adopt into the local layers without re-pushing to the fleet
        super().put(key, value)
        return value

    def put(self, key: str, value: object) -> None:
        super().put(key, value)
        if self.remote is not None:
            errors_before = self.remote.errors
            self.remote.push(key, value)
            if self.remote.errors > errors_before:
                self._count_full("sim.fabric.remote_cache_errors")

    def stats(self) -> dict[str, int | float]:
        doc = super().stats()
        doc["remote_hits"] = self.remote_hits
        if self.remote is not None:
            doc["remote_errors"] = self.remote.errors
            doc["remote_healthy"] = self.remote.healthy
        return doc
