"""Sweep engine: fan experiment points across a worker fabric.

The paper's evaluation is a grid of independent simulation points --
(cube size, message length, algorithm, trial seed) -- so the sweep
engine is deliberately simple: a point function (any picklable
module-level callable), a list of point specs (picklable, primitives
only), and :func:`run_points`, which executes them serially or across
the active :func:`sweep_context`'s worker fabric.  Which workers is a
transport decision, delegated to a
:class:`~repro.parallel.fabric.Communicator`: the default
:class:`~repro.parallel.fabric.LocalCommunicator` is the original
single-host process pool, and a
:class:`~repro.parallel.fabric.TcpCoordinator` (``fabric=`` argument)
fans the same chunks over multi-host TCP workers instead.

Guarantees:

- **Bit-identity with the serial path.**  The same point function runs
  either way; results are reassembled in submission order; per-point
  seeds are part of the spec, never derived from scheduling.  The
  regression suite asserts byte-identical figure tables for
  ``jobs=4`` vs serial, cache cold and warm -- and, with a journal,
  for resumed vs uninterrupted runs, and for distributed vs serial.
- **Graceful degradation.**  A failed worker (crash, pickling error,
  broken pool, dead host) only costs its chunk, which is transparently
  re-run; a deterministic point *error* still surfaces exactly as it
  would serially.  With a :class:`~repro.parallel.resilience.WatchdogConfig`
  active, crashed and *hung* chunks are first requeued under a capped,
  exponentially backed-off retry budget; points that keep failing are
  quarantined to in-process execution; a repeatedly lost pool degrades
  the remainder to in-process; and a TCP fabric whose last worker host
  dies degrades the sweep to the local backend mid-flight.
- **Crash recovery.**  With a :class:`~repro.parallel.journal.SweepJournal`
  active, every completed point is durably checkpointed as it is
  absorbed, and points already journaled by a previous (crashed or
  killed) run of the same sweep are served from the journal without
  recomputation -- including points originally computed on a host that
  no longer exists, because fingerprints are content-addressed.
- **Observability.**  Workers buffer their telemetry
  (:class:`~repro.obs.sink.MemorySink`) and metric deltas per chunk and
  the parent merges both -- records into the parent's active sink,
  deltas into the context's registry -- so ``--telemetry`` output and
  ``sim.parallel.*`` metrics look the same no matter where points ran.
  Watchdog and journal activity is reported under ``sim.resilience.*``
  and as ``kind="resilience-event"`` telemetry; fleet-level decisions
  under ``sim.fabric.*`` and ``kind="fabric-event"``.

Points are dispatched in chunks (default: ~4 chunks per worker) to
amortize inter-process overhead on sub-millisecond points.  Workers
heartbeat before every point, which is what lets the parent distinguish
a slow chunk from a hung one -- through a shared manager dict on the
local pool, over the wire on the TCP fabric.
"""

from __future__ import annotations

import os
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from math import ceil
from time import perf_counter
from typing import Callable, Iterator, Sequence, TypeVar

from repro.obs import sink as _sink_mod
from repro.obs import trace_spans
from repro.obs.metrics import MetricsRegistry, merge_snapshot
from repro.obs.telemetry import RunRecord
from repro.parallel.cache import ScheduleCache, activate_cache
from repro.parallel.fabric import (
    Communicator,
    FabricConfig,
    LocalCommunicator,
    TcpCoordinator,
    emit_fabric_event,
)
from repro.parallel.journal import SweepJournal, point_fingerprint
from repro.parallel.resilience import (
    PointTracker,
    WatchdogConfig,
    emit_resilience_event,
)

__all__ = [
    "SweepConfig",
    "default_jobs",
    "get_sweep_journal",
    "get_sweep_metrics",
    "run_points",
    "sweep_context",
]

S = TypeVar("S")
R = TypeVar("R")


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Active sweep parameters (one per :func:`sweep_context`).

    ``communicator`` is the transport the engine dispatches rounds to;
    ``None`` means a fresh per-sweep
    :class:`~repro.parallel.fabric.LocalCommunicator`.
    """

    jobs: int
    cache_dir: str | None = None
    chunk_size: int | None = None
    watchdog: WatchdogConfig | None = None
    communicator: Communicator | None = None


def default_jobs() -> int:
    """Worker count when unspecified: ``REPRO_JOBS`` or the CPU count."""
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


_config: SweepConfig | None = None
_metrics: MetricsRegistry | None = None
_journal: SweepJournal | None = None


def get_sweep_metrics() -> MetricsRegistry | None:
    """The active context's ``sim.parallel.*`` registry, if any."""
    return _metrics


def get_sweep_journal() -> SweepJournal | None:
    """The active context's checkpoint journal, if any."""
    return _journal


@contextmanager
def sweep_context(
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    chunk_size: int | None = None,
    metrics: MetricsRegistry | None = None,
    watchdog: WatchdogConfig | None = None,
    journal: SweepJournal | None = None,
    fabric: FabricConfig | Communicator | None = None,
) -> Iterator[MetricsRegistry]:
    """Activate the sweep engine for the dynamic extent of the block.

    Args:
        jobs: worker processes (``None``/``0`` -> :func:`default_jobs`;
            ``1`` -> serial execution, still with schedule caching).
        cache_dir: optional shared on-disk cache directory (see
            :mod:`repro.parallel.cache`); with ``None`` the cache is
            in-memory only (per process).
        chunk_size: points per dispatched chunk (default: ~4 chunks per
            worker).
        metrics: registry to record engine/cache metrics into (default:
            a fresh one, yielded for inspection).
        watchdog: hung-worker detection and retry policy (see
            :mod:`repro.parallel.resilience`); ``None`` disables
            timeouts and requeueing (failures fall straight back to
            in-process execution, the pre-watchdog behavior) -- except
            with a ``fabric``, where heartbeat timeouts are load-bearing
            and :meth:`WatchdogConfig.from_env` defaults apply.
        journal: checkpoint journal for crash-safe resume (see
            :mod:`repro.parallel.journal`); the caller owns its
            lifecycle (open/close).
        fabric: distribute chunks over TCP workers instead of the local
            pool -- either a :class:`~repro.parallel.fabric.FabricConfig`
            (a :class:`~repro.parallel.fabric.TcpCoordinator` is built,
            started, and stopped by the context, and the context blocks
            up to ``fabric.wait_s`` for ``fabric.min_workers`` to join)
            or any pre-built :class:`~repro.parallel.fabric.Communicator`
            (started and stopped by the context).  If the fabric loses
            its last worker, the sweep degrades to the local pool.

    Contexts nest: the innermost wins, the outer is restored on exit.
    """
    global _config, _metrics, _journal
    resolved_jobs = default_jobs() if not jobs else max(1, int(jobs))
    prev_config, prev_metrics, prev_journal = _config, _metrics, _journal
    registry = metrics if metrics is not None else MetricsRegistry()
    communicator: Communicator | None = None
    if fabric is not None:
        if watchdog is None:
            # heartbeat timeouts are what detect a dead host; a fabric
            # without a watchdog would never notice one
            watchdog = WatchdogConfig.from_env()
        if isinstance(fabric, Communicator):
            communicator = fabric
            # a pre-built communicator without its own registry records
            # into the context's, so sim.fabric.* never silently vanishes
            if getattr(communicator, "metrics", None) is None:
                communicator.metrics = registry
        else:
            communicator = TcpCoordinator(fabric, watchdog=watchdog, metrics=registry)
        communicator.start()
        if isinstance(communicator, TcpCoordinator):
            joined = communicator.wait_for_workers()
            registry.gauge("sim.fabric.workers_connected").set(float(joined))
    _config = SweepConfig(
        jobs=resolved_jobs,
        cache_dir=os.fspath(cache_dir) if cache_dir is not None else None,
        chunk_size=chunk_size,
        watchdog=watchdog,
        communicator=communicator,
    )
    _metrics = registry
    _journal = journal
    registry.gauge("sim.parallel.jobs").set(resolved_jobs)
    prev_cache = activate_cache(ScheduleCache(cache_dir, metrics=registry))
    try:
        yield registry
    finally:
        _config, _metrics, _journal = prev_config, prev_metrics, prev_journal
        activate_cache(prev_cache)
        if communicator is not None:
            communicator.stop()


def run_points(
    fn: Callable[[S], R],
    specs: Sequence[S],
    label: str | None = None,
) -> list[R]:
    """Evaluate ``fn`` over ``specs``, preserving order.

    Serial (a plain comprehension) when no :func:`sweep_context` is
    active, when ``jobs <= 1`` with no fabric attached, or for
    single-point sweeps; otherwise fanned across the context's
    communicator.  ``label`` names the sweep in per-sweep metrics.
    With an active journal, points already checkpointed by a previous
    run of the same sweep are served from the journal, and every fresh
    completion is checkpointed as it lands.
    """
    specs = list(specs)
    config, metrics, journal = _config, _metrics, _journal
    if metrics is not None:
        metrics.counter("sim.parallel.points_total").inc(len(specs))
        if label:
            metrics.counter(f"sim.parallel.points.{label}").inc(len(specs))
    if journal is not None:
        return _run_journaled(fn, specs, config, metrics, journal, label)
    if _is_serial(config, len(specs)):
        return [fn(spec) for spec in specs]
    return _run_parallel(fn, specs, config, metrics)


def _is_serial(config: SweepConfig | None, points: int) -> bool:
    """Whether a sweep of ``points`` runs as a plain comprehension."""
    if config is None or points <= 1:
        return True
    return config.jobs <= 1 and config.communicator is None


def _run_journaled(
    fn: Callable[[S], R],
    specs: list[S],
    config: SweepConfig | None,
    metrics: MetricsRegistry | None,
    journal: SweepJournal,
    label: str | None,
) -> list[R]:
    """Journal-aware evaluation: skip checkpointed points, checkpoint
    fresh completions the moment the parent absorbs them."""
    fingerprints = [point_fingerprint(fn, spec) for spec in specs]
    results: list[R | None] = [None] * len(specs)
    todo: list[int] = []
    for i, fingerprint in enumerate(fingerprints):
        hit = journal.lookup(fingerprint)
        if SweepJournal.is_miss(hit):
            todo.append(i)
        else:
            results[i] = hit  # type: ignore[assignment]
    skipped = len(specs) - len(todo)
    if skipped:
        if metrics is not None:
            metrics.counter("sim.resilience.journal_hits").inc(skipped)
        emit_resilience_event(
            "sweep-resumed",
            run_id=journal.run_id,
            label=label,
            skipped=skipped,
            total=len(specs),
        )
    if todo:

        def on_point(sub_index: int, value: R) -> None:
            index = todo[sub_index]
            results[index] = value
            if journal.append(fingerprints[index], value) and metrics is not None:
                metrics.counter("sim.resilience.journal_appends").inc()

        todo_specs = [specs[i] for i in todo]
        if _is_serial(config, len(todo_specs)):
            for sub_index, spec in enumerate(todo_specs):
                on_point(sub_index, fn(spec))
        else:
            _run_parallel(fn, todo_specs, config, metrics, on_point=on_point)
    return results  # type: ignore[return-value]


def _chunked(indexed: list[tuple[int, S]], size: int) -> list[list[tuple[int, S]]]:
    return [indexed[i : i + size] for i in range(0, len(indexed), size)]


def _run_parallel(
    fn: Callable[[S], R],
    specs: list[S],
    config: SweepConfig,
    metrics: MetricsRegistry | None,
    on_point: Callable[[int, R], None] | None = None,
) -> list[R]:
    """Fan ``specs`` over the communicator, under one
    ``parallel.dispatch`` span when the parent is tracing (worker spans
    replay beneath it)."""
    with trace_spans.span(
        "parallel.dispatch", points=len(specs), jobs=min(config.jobs, len(specs))
    ) as dispatch_span:
        return _dispatch(fn, specs, config, metrics, on_point, dispatch_span)


def _dispatch(
    fn: Callable[[S], R],
    specs: list[S],
    config: SweepConfig,
    metrics: MetricsRegistry | None,
    on_point: Callable[[int, R], None] | None,
    dispatch_span,
) -> list[R]:
    wd = config.watchdog
    jobs = min(config.jobs, len(specs))
    chunk_size = config.chunk_size or max(1, ceil(len(specs) / (jobs * 4)))
    indexed = list(enumerate(specs))
    chunks = _chunked(indexed, chunk_size)
    results: list[R | None] = [None] * len(specs)
    done = [False] * len(specs)
    parent_sink = _sink_mod.get_sink()
    tracer = trace_spans.get_tracer()
    trace_id = tracer.trace_id if tracer is not None else None
    remote = {"points": 0}
    start = perf_counter()

    def absorb(chunk_results, records, snapshot, spans=None) -> None:
        for index, value in chunk_results:
            results[index] = value
            done[index] = True
            remote["points"] += 1
            if on_point is not None:
                on_point(index, value)
        if parent_sink is not None:
            for payload in records:
                parent_sink.write(RunRecord.from_dict(payload))
        if metrics is not None and snapshot:
            merge_snapshot(metrics, snapshot)
        if tracer is not None and spans:
            tracer.replay(
                spans,
                parent_id=dispatch_span.span_id if dispatch_span is not None else None,
            )

    def count(name: str, amount: float = 1.0) -> None:
        if metrics is not None:
            metrics.counter(name).inc(amount)

    if metrics is not None:
        metrics.counter("sim.parallel.chunks").inc(len(chunks))
        # pre-register the failure counters so a clean run reports
        # explicit zeros rather than absent instruments
        metrics.counter("sim.parallel.worker_failures")
        metrics.counter("sim.parallel.fallback_points")

    comm = config.communicator
    local: Communicator | None = None
    if comm is None:
        comm = local = LocalCommunicator(jobs, config.cache_dir, wd, metrics)

    tracker = PointTracker(wd.quarantine_after if wd is not None else 1)
    outstanding = chunks
    in_process: list[list[tuple[int, S]]] = []
    pool_losses = 0
    round_no = 0

    while outstanding:
        round_no += 1
        outcome = comm.run_round(fn, outstanding, absorb, done, trace_id)
        retryable, fatal, pool_lost = outcome.retryable, outcome.fatal, outcome.lost
        if pool_lost:
            pool_losses += 1
            count("sim.resilience.pool_losses")
        if local is None and not comm.healthy:
            # the fabric's last worker host is gone: finish the sweep on
            # the local pool, with a fresh loss budget -- from here on
            # this is an ordinary single-host sweep
            count("sim.fabric.degraded_to_local")
            emit_fabric_event("fabric-degraded-local", **comm.describe())
            comm = local = LocalCommunicator(jobs, config.cache_dir, wd, metrics)
            pool_losses = 0
        outstanding = []
        in_process.extend(fatal)
        if wd is None:
            # pre-watchdog behavior: one pool pass, failures fall back
            in_process.extend(retryable)
            break
        requeue: list[tuple[int, S]] = []
        for chunk in retryable:
            for index, spec in chunk:
                if done[index]:
                    continue
                if tracker.record_failure(index):
                    count("sim.resilience.quarantined_points")
                    emit_resilience_event(
                        "point-quarantined",
                        point=index,
                        failures=tracker.failures[index],
                    )
                    in_process.append([(index, spec)])
                else:
                    requeue.append((index, spec))
        if requeue:
            exhausted = round_no > wd.retry.max_retries
            if pool_losses >= wd.pool_loss_limit or exhausted:
                count("sim.resilience.degraded_points", float(len(requeue)))
                emit_resilience_event(
                    "pool-degraded",
                    points=len(requeue),
                    pool_losses=pool_losses,
                    rounds=round_no,
                )
                in_process.extend([point] for point in requeue)
            else:
                count("sim.resilience.requeued_points", float(len(requeue)))
                backoff = wd.retry.backoff(round_no)
                if backoff > 0:
                    if metrics is not None:
                        metrics.timer("sim.resilience.retry_backoff_wall").record(backoff)
                    _time.sleep(backoff)
                outstanding = _chunked(requeue, chunk_size)

    for chunk in in_process:
        count("sim.parallel.fallback_points", float(len(chunk)))
        for index, spec in chunk:
            if not done[index]:
                # in-process: the parent's cache and sink apply directly
                value = fn(spec)
                results[index] = value
                done[index] = True
                if on_point is not None:
                    on_point(index, value)

    if metrics is not None:
        metrics.counter("sim.parallel.points_remote").inc(remote["points"])
        metrics.timer("sim.parallel.dispatch_wall").record(perf_counter() - start)
    missing = [i for i, flag in enumerate(done) if not flag]
    if missing:  # pragma: no cover - defensive; fallback covers all paths
        raise RuntimeError(f"sweep engine lost points {missing[:5]}...")
    return results  # type: ignore[return-value]
