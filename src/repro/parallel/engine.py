"""Process-pool sweep engine: fan experiment points across workers.

The paper's evaluation is a grid of independent simulation points --
(cube size, message length, algorithm, trial seed) -- so the sweep
engine is deliberately simple: a point function (any picklable
module-level callable), a list of point specs (picklable, primitives
only), and :func:`run_points`, which executes them serially or across a
:class:`~concurrent.futures.ProcessPoolExecutor` depending on the
active :func:`sweep_context`.

Guarantees:

- **Bit-identity with the serial path.**  The same point function runs
  either way; results are reassembled in submission order; per-point
  seeds are part of the spec, never derived from scheduling.  The
  regression suite asserts byte-identical figure tables for
  ``jobs=4`` vs serial, cache cold and warm.
- **Graceful degradation.**  A failed worker (crash, pickling error,
  broken pool) only costs its chunk, which is transparently re-run
  in-process; a deterministic point *error* still surfaces exactly as
  it would serially.
- **Observability.**  Workers buffer their telemetry
  (:class:`~repro.obs.sink.MemorySink`) and metric deltas per chunk and
  the parent merges both -- records into the parent's active sink,
  deltas into the context's registry -- so ``--telemetry`` output and
  ``sim.parallel.*`` metrics look the same no matter where points ran.

Points are dispatched in chunks (default: ~4 chunks per worker) to
amortize inter-process overhead on sub-millisecond points.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from math import ceil
from time import perf_counter
from typing import Callable, Iterator, Sequence, TypeVar

from repro.obs import sink as _sink_mod
from repro.obs.metrics import MetricsRegistry, merge_snapshot
from repro.obs.sink import MemorySink
from repro.obs.telemetry import RunRecord
from repro.parallel.cache import ScheduleCache, activate_cache, get_active_cache

__all__ = [
    "SweepConfig",
    "default_jobs",
    "get_sweep_metrics",
    "run_points",
    "sweep_context",
]

S = TypeVar("S")
R = TypeVar("R")


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Active sweep parameters (one per :func:`sweep_context`)."""

    jobs: int
    cache_dir: str | None = None
    chunk_size: int | None = None


def default_jobs() -> int:
    """Worker count when unspecified: ``REPRO_JOBS`` or the CPU count."""
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


_config: SweepConfig | None = None
_metrics: MetricsRegistry | None = None


def get_sweep_metrics() -> MetricsRegistry | None:
    """The active context's ``sim.parallel.*`` registry, if any."""
    return _metrics


@contextmanager
def sweep_context(
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    chunk_size: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Activate the sweep engine for the dynamic extent of the block.

    Args:
        jobs: worker processes (``None``/``0`` -> :func:`default_jobs`;
            ``1`` -> serial execution, still with schedule caching).
        cache_dir: optional shared on-disk cache directory (see
            :mod:`repro.parallel.cache`); with ``None`` the cache is
            in-memory only (per process).
        chunk_size: points per dispatched chunk (default: ~4 chunks per
            worker).
        metrics: registry to record engine/cache metrics into (default:
            a fresh one, yielded for inspection).

    Contexts nest: the innermost wins, the outer is restored on exit.
    """
    global _config, _metrics
    resolved_jobs = default_jobs() if not jobs else max(1, int(jobs))
    prev_config, prev_metrics = _config, _metrics
    registry = metrics if metrics is not None else MetricsRegistry()
    _config = SweepConfig(
        jobs=resolved_jobs,
        cache_dir=os.fspath(cache_dir) if cache_dir is not None else None,
        chunk_size=chunk_size,
    )
    _metrics = registry
    registry.gauge("sim.parallel.jobs").set(resolved_jobs)
    prev_cache = activate_cache(ScheduleCache(cache_dir, metrics=registry))
    try:
        yield registry
    finally:
        _config, _metrics = prev_config, prev_metrics
        activate_cache(prev_cache)


# -- worker side -------------------------------------------------------


def _worker_init(cache_dir: str | None) -> None:
    """Pool initializer: give the worker its own cache (fresh memory
    layer, shared disk layer) so parent state never leaks in."""
    activate_cache(ScheduleCache(cache_dir))


def _run_chunk(
    fn: Callable[[S], R], chunk: Sequence[tuple[int, S]]
) -> tuple[list[tuple[int, R]], list[dict], dict[str, dict]]:
    """Execute one chunk of (index, spec) pairs inside a worker.

    Telemetry is buffered in a :class:`MemorySink` (never written
    directly from the worker -- a dead worker must not leave partial or
    duplicate records) and cache metrics go to a per-chunk registry so
    the parent can merge exact deltas.
    """
    registry = MetricsRegistry()
    cache = get_active_cache()
    prev_cache_metrics = cache.metrics if cache is not None else None
    if cache is not None:
        cache.metrics = registry
    buffer = MemorySink()
    prev_sink = _sink_mod.configure(buffer)
    try:
        results = [(index, fn(spec)) for index, spec in chunk]
    finally:
        _sink_mod.configure(prev_sink)
        if cache is not None:
            cache.metrics = prev_cache_metrics
    return results, [r.to_dict() for r in buffer.records], registry.snapshot()


# -- parent side -------------------------------------------------------


def run_points(
    fn: Callable[[S], R],
    specs: Sequence[S],
    label: str | None = None,
) -> list[R]:
    """Evaluate ``fn`` over ``specs``, preserving order.

    Serial (a plain comprehension) when no :func:`sweep_context` is
    active, when ``jobs <= 1``, or for single-point sweeps; otherwise
    fanned across the context's process pool.  ``label`` names the
    sweep in per-sweep metrics.
    """
    specs = list(specs)
    config, metrics = _config, _metrics
    if metrics is not None:
        metrics.counter("sim.parallel.points_total").inc(len(specs))
        if label:
            metrics.counter(f"sim.parallel.points.{label}").inc(len(specs))
    if config is None or config.jobs <= 1 or len(specs) <= 1:
        return [fn(spec) for spec in specs]
    return _run_parallel(fn, specs, config, metrics)


def _chunked(indexed: list[tuple[int, S]], size: int) -> list[list[tuple[int, S]]]:
    return [indexed[i : i + size] for i in range(0, len(indexed), size)]


def _run_parallel(
    fn: Callable[[S], R],
    specs: list[S],
    config: SweepConfig,
    metrics: MetricsRegistry | None,
) -> list[R]:
    jobs = min(config.jobs, len(specs))
    chunk_size = config.chunk_size or max(1, ceil(len(specs) / (jobs * 4)))
    indexed = list(enumerate(specs))
    chunks = _chunked(indexed, chunk_size)
    results: list[R | None] = [None] * len(specs)
    done = [False] * len(specs)
    parent_sink = _sink_mod.get_sink()
    failed_chunks: list[list[tuple[int, S]]] = []
    start = perf_counter()

    def absorb(chunk_results, records, snapshot) -> None:
        for index, value in chunk_results:
            results[index] = value
            done[index] = True
        if parent_sink is not None:
            for payload in records:
                parent_sink.write(RunRecord.from_dict(payload))
        if metrics is not None and snapshot:
            merge_snapshot(metrics, snapshot)

    if metrics is not None:
        metrics.counter("sim.parallel.chunks").inc(len(chunks))
        # pre-register the failure counters so a clean run reports
        # explicit zeros rather than absent instruments
        metrics.counter("sim.parallel.worker_failures")
        metrics.counter("sim.parallel.fallback_points")
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(config.cache_dir,),
        ) as pool:
            pending: dict[Future, list[tuple[int, S]]] = {
                pool.submit(_run_chunk, fn, chunk): chunk for chunk in chunks
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    chunk = pending.pop(future)
                    try:
                        absorb(*future.result())
                    except Exception:
                        # worker crash, broken pool, or unpicklable
                        # result: the chunk re-runs in-process below
                        if metrics is not None:
                            metrics.counter("sim.parallel.worker_failures").inc()
                        failed_chunks.append(chunk)
    except Exception:
        # the pool itself failed (submission error, fork failure):
        # everything not yet absorbed re-runs in-process
        if metrics is not None:
            metrics.counter("sim.parallel.worker_failures").inc()
        failed_chunks = [
            chunk for chunk in chunks if not all(done[i] for i, _ in chunk)
        ]

    for chunk in failed_chunks:
        if metrics is not None:
            metrics.counter("sim.parallel.fallback_points").inc(len(chunk))
        for index, spec in chunk:
            if not done[index]:
                # in-process: the parent's cache and sink apply directly
                results[index] = fn(spec)
                done[index] = True

    if metrics is not None:
        metrics.counter("sim.parallel.points_remote").inc(sum(done) - sum(
            len(c) for c in failed_chunks
        ))
        metrics.timer("sim.parallel.dispatch_wall").record(perf_counter() - start)
    missing = [i for i, flag in enumerate(done) if not flag]
    if missing:  # pragma: no cover - defensive; fallback covers all paths
        raise RuntimeError(f"sweep engine lost points {missing[:5]}...")
    return results  # type: ignore[return-value]
