"""Process-pool sweep engine: fan experiment points across workers.

The paper's evaluation is a grid of independent simulation points --
(cube size, message length, algorithm, trial seed) -- so the sweep
engine is deliberately simple: a point function (any picklable
module-level callable), a list of point specs (picklable, primitives
only), and :func:`run_points`, which executes them serially or across a
:class:`~concurrent.futures.ProcessPoolExecutor` depending on the
active :func:`sweep_context`.

Guarantees:

- **Bit-identity with the serial path.**  The same point function runs
  either way; results are reassembled in submission order; per-point
  seeds are part of the spec, never derived from scheduling.  The
  regression suite asserts byte-identical figure tables for
  ``jobs=4`` vs serial, cache cold and warm -- and, with a journal,
  for resumed vs uninterrupted runs.
- **Graceful degradation.**  A failed worker (crash, pickling error,
  broken pool) only costs its chunk, which is transparently re-run
  in-process; a deterministic point *error* still surfaces exactly as
  it would serially.  With a :class:`~repro.parallel.resilience.WatchdogConfig`
  active, crashed and *hung* chunks are first requeued to a fresh pool
  under a capped, exponentially backed-off retry budget; points that
  keep failing are quarantined to in-process execution, and a
  repeatedly lost pool degrades the whole remainder to in-process.
- **Crash recovery.**  With a :class:`~repro.parallel.journal.SweepJournal`
  active, every completed point is durably checkpointed as it is
  absorbed, and points already journaled by a previous (crashed or
  killed) run of the same sweep are served from the journal without
  recomputation.
- **Observability.**  Workers buffer their telemetry
  (:class:`~repro.obs.sink.MemorySink`) and metric deltas per chunk and
  the parent merges both -- records into the parent's active sink,
  deltas into the context's registry -- so ``--telemetry`` output and
  ``sim.parallel.*`` metrics look the same no matter where points ran.
  Watchdog and journal activity is reported under ``sim.resilience.*``
  and as ``kind="resilience-event"`` telemetry.

Points are dispatched in chunks (default: ~4 chunks per worker) to
amortize inter-process overhead on sub-millisecond points.  Workers
heartbeat (via a shared manager dict) before every point, which is what
lets the parent distinguish a slow chunk from a hung one.
"""

from __future__ import annotations

import multiprocessing
import os
import time as _time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from math import ceil
from time import perf_counter
from typing import Callable, Iterator, Sequence, TypeVar

from repro.obs import sink as _sink_mod
from repro.obs import trace_spans
from repro.obs.metrics import MetricsRegistry, merge_snapshot
from repro.obs.sink import MemorySink
from repro.obs.telemetry import RunRecord
from repro.parallel.cache import ScheduleCache, activate_cache, get_active_cache
from repro.parallel.journal import SweepJournal, point_fingerprint
from repro.parallel.resilience import (
    PointTracker,
    WatchdogConfig,
    emit_resilience_event,
)

__all__ = [
    "SweepConfig",
    "default_jobs",
    "get_sweep_journal",
    "get_sweep_metrics",
    "run_points",
    "sweep_context",
]

S = TypeVar("S")
R = TypeVar("R")


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Active sweep parameters (one per :func:`sweep_context`)."""

    jobs: int
    cache_dir: str | None = None
    chunk_size: int | None = None
    watchdog: WatchdogConfig | None = None


def default_jobs() -> int:
    """Worker count when unspecified: ``REPRO_JOBS`` or the CPU count."""
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


_config: SweepConfig | None = None
_metrics: MetricsRegistry | None = None
_journal: SweepJournal | None = None


def get_sweep_metrics() -> MetricsRegistry | None:
    """The active context's ``sim.parallel.*`` registry, if any."""
    return _metrics


def get_sweep_journal() -> SweepJournal | None:
    """The active context's checkpoint journal, if any."""
    return _journal


@contextmanager
def sweep_context(
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    chunk_size: int | None = None,
    metrics: MetricsRegistry | None = None,
    watchdog: WatchdogConfig | None = None,
    journal: SweepJournal | None = None,
) -> Iterator[MetricsRegistry]:
    """Activate the sweep engine for the dynamic extent of the block.

    Args:
        jobs: worker processes (``None``/``0`` -> :func:`default_jobs`;
            ``1`` -> serial execution, still with schedule caching).
        cache_dir: optional shared on-disk cache directory (see
            :mod:`repro.parallel.cache`); with ``None`` the cache is
            in-memory only (per process).
        chunk_size: points per dispatched chunk (default: ~4 chunks per
            worker).
        metrics: registry to record engine/cache metrics into (default:
            a fresh one, yielded for inspection).
        watchdog: hung-worker detection and retry policy (see
            :mod:`repro.parallel.resilience`); ``None`` disables
            timeouts and requeueing (failures fall straight back to
            in-process execution, the pre-watchdog behavior).
        journal: checkpoint journal for crash-safe resume (see
            :mod:`repro.parallel.journal`); the caller owns its
            lifecycle (open/close).

    Contexts nest: the innermost wins, the outer is restored on exit.
    """
    global _config, _metrics, _journal
    resolved_jobs = default_jobs() if not jobs else max(1, int(jobs))
    prev_config, prev_metrics, prev_journal = _config, _metrics, _journal
    registry = metrics if metrics is not None else MetricsRegistry()
    _config = SweepConfig(
        jobs=resolved_jobs,
        cache_dir=os.fspath(cache_dir) if cache_dir is not None else None,
        chunk_size=chunk_size,
        watchdog=watchdog,
    )
    _metrics = registry
    _journal = journal
    registry.gauge("sim.parallel.jobs").set(resolved_jobs)
    prev_cache = activate_cache(ScheduleCache(cache_dir, metrics=registry))
    try:
        yield registry
    finally:
        _config, _metrics, _journal = prev_config, prev_metrics, prev_journal
        activate_cache(prev_cache)


# -- worker side -------------------------------------------------------


def _worker_init(cache_dir: str | None) -> None:
    """Pool initializer: give the worker its own cache (fresh memory
    layer, shared disk layer) so parent state never leaks in."""
    activate_cache(ScheduleCache(cache_dir))


def _run_chunk(
    fn: Callable[[S], R],
    chunk: Sequence[tuple[int, S]],
    chunk_id: int | None = None,
    heartbeats=None,
    trace_id: str | None = None,
) -> tuple[list[tuple[int, R]], list[dict], dict[str, dict], dict | None]:
    """Execute one chunk of (index, spec) pairs inside a worker.

    Telemetry is buffered in a :class:`MemorySink` (never written
    directly from the worker -- a dead worker must not leave partial or
    duplicate records) and cache metrics go to a per-chunk registry so
    the parent can merge exact deltas.  When the parent supplied a
    ``heartbeats`` mapping (watchdog mode), the worker beats before
    every point so the parent can tell slow from hung.  When the parent
    is tracing (``trace_id``), the worker runs its own tracer -- seeded
    from the parent's trace id, the chunk id, and the worker pid so span
    ids never collide across chunks -- and ships the span snapshot home
    in the return tuple for replay, exactly like the telemetry buffer.
    """
    registry = MetricsRegistry()
    cache = get_active_cache()
    prev_cache_metrics = cache.metrics if cache is not None else None
    if cache is not None:
        cache.metrics = registry
    buffer = MemorySink()
    prev_sink = _sink_mod.configure(buffer)
    worker_tracer = None
    prev_tracer = None
    chunk_span = None
    if trace_id is not None:
        worker_tracer = trace_spans.Tracer(
            trace_id=trace_spans.derive_trace_id(trace_id, "chunk", chunk_id, os.getpid()),
            label=f"chunk-{chunk_id}",
        )
        prev_tracer = trace_spans.configure_tracing(worker_tracer)
        chunk_span = worker_tracer.start_span(
            "parallel.chunk", {"chunk": chunk_id, "points": len(chunk)}
        )

    def beat() -> None:
        if heartbeats is not None:
            try:
                # wall clock on purpose: heartbeat ages are compared in
                # the *parent* process, and Python only guarantees the
                # monotonic clock is comparable within one process
                # repro: lint-ok[REP002] cross-process heartbeat timestamps need a shared clock
                heartbeats[chunk_id] = _time.time()
            except Exception:
                # manager gone: the parent is tearing us down; count it
                # so the suppression shows up in the merged metrics if
                # this chunk still makes it home
                registry.counter("sim.resilience.heartbeat_errors").inc()

    try:
        results = []
        for index, spec in chunk:
            beat()
            results.append((index, fn(spec)))
    finally:
        if worker_tracer is not None:
            if chunk_span is not None:
                worker_tracer.end_span(chunk_span)
            trace_spans.configure_tracing(prev_tracer)
        _sink_mod.configure(prev_sink)
        if cache is not None:
            cache.metrics = prev_cache_metrics
    trace_snapshot = worker_tracer.snapshot() if worker_tracer is not None else None
    return (
        results,
        [r.to_dict() for r in buffer.records],
        registry.snapshot(),
        trace_snapshot,
    )


# -- parent side -------------------------------------------------------


def run_points(
    fn: Callable[[S], R],
    specs: Sequence[S],
    label: str | None = None,
) -> list[R]:
    """Evaluate ``fn`` over ``specs``, preserving order.

    Serial (a plain comprehension) when no :func:`sweep_context` is
    active, when ``jobs <= 1``, or for single-point sweeps; otherwise
    fanned across the context's process pool.  ``label`` names the
    sweep in per-sweep metrics.  With an active journal, points already
    checkpointed by a previous run of the same sweep are served from
    the journal, and every fresh completion is checkpointed as it
    lands.
    """
    specs = list(specs)
    config, metrics, journal = _config, _metrics, _journal
    if metrics is not None:
        metrics.counter("sim.parallel.points_total").inc(len(specs))
        if label:
            metrics.counter(f"sim.parallel.points.{label}").inc(len(specs))
    if journal is not None:
        return _run_journaled(fn, specs, config, metrics, journal, label)
    if config is None or config.jobs <= 1 or len(specs) <= 1:
        return [fn(spec) for spec in specs]
    return _run_parallel(fn, specs, config, metrics)


def _run_journaled(
    fn: Callable[[S], R],
    specs: list[S],
    config: SweepConfig | None,
    metrics: MetricsRegistry | None,
    journal: SweepJournal,
    label: str | None,
) -> list[R]:
    """Journal-aware evaluation: skip checkpointed points, checkpoint
    fresh completions the moment the parent absorbs them."""
    fingerprints = [point_fingerprint(fn, spec) for spec in specs]
    results: list[R | None] = [None] * len(specs)
    todo: list[int] = []
    for i, fingerprint in enumerate(fingerprints):
        hit = journal.lookup(fingerprint)
        if SweepJournal.is_miss(hit):
            todo.append(i)
        else:
            results[i] = hit  # type: ignore[assignment]
    skipped = len(specs) - len(todo)
    if skipped:
        if metrics is not None:
            metrics.counter("sim.resilience.journal_hits").inc(skipped)
        emit_resilience_event(
            "sweep-resumed",
            run_id=journal.run_id,
            label=label,
            skipped=skipped,
            total=len(specs),
        )
    if todo:

        def on_point(sub_index: int, value: R) -> None:
            index = todo[sub_index]
            results[index] = value
            if journal.append(fingerprints[index], value) and metrics is not None:
                metrics.counter("sim.resilience.journal_appends").inc()

        todo_specs = [specs[i] for i in todo]
        if config is None or config.jobs <= 1 or len(todo_specs) <= 1:
            for sub_index, spec in enumerate(todo_specs):
                on_point(sub_index, fn(spec))
        else:
            _run_parallel(fn, todo_specs, config, metrics, on_point=on_point)
    return results  # type: ignore[return-value]


def _chunked(indexed: list[tuple[int, S]], size: int) -> list[list[tuple[int, S]]]:
    return [indexed[i : i + size] for i in range(0, len(indexed), size)]


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool's workers (hung-pool containment).

    Reaches into the executor because the public API has no way to kill
    a worker; a terminated process unblocks the executor's own joins.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        # repro: lint-ok[REP004] best-effort teardown of an already-dead pool; no registry in scope
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def _pool_round(
    fn: Callable[[S], R],
    chunks: list[list[tuple[int, S]]],
    jobs: int,
    config: SweepConfig,
    metrics: MetricsRegistry | None,
    absorb: Callable,
    done: list[bool],
    trace_id: str | None = None,
) -> tuple[list[list[tuple[int, S]]], list[list[tuple[int, S]]], bool]:
    """One process-pool pass over ``chunks``.

    Returns ``(retryable, fatal, pool_lost)``: chunks that failed for
    pool-level reasons (crash, hang, broken pool) and may be requeued;
    chunks whose point function raised deterministically (they go
    straight to in-process execution, where the error surfaces); and
    whether the pool itself was lost (hang kill or construction
    failure).
    """
    wd = config.watchdog
    retryable: list[list[tuple[int, S]]] = []
    fatal: list[list[tuple[int, S]]] = []
    pool_lost = False
    manager = None
    heartbeats = None
    soft_flagged: set[int] = set()

    def count(name: str, amount: float = 1.0) -> None:
        if metrics is not None:
            metrics.counter(name).inc(amount)

    try:
        if wd is not None:
            manager = multiprocessing.Manager()
            heartbeats = manager.dict()
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(config.cache_dir,),
        ) as pool:
            pending: dict[Future, tuple[int, list[tuple[int, S]]]] = {}
            for chunk_id, chunk in enumerate(chunks):
                future = pool.submit(_run_chunk, fn, chunk, chunk_id, heartbeats, trace_id)
                pending[future] = (chunk_id, chunk)
            hung = False
            while pending and not hung:
                timeout = wd.poll_s if wd is not None else None
                finished, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
                for future in finished:
                    _, chunk = pending.pop(future)
                    try:
                        absorb(*future.result())
                    except BrokenProcessPool:
                        count("sim.parallel.worker_failures")
                        pool_lost = True
                        retryable.append(chunk)
                    except Exception:
                        count("sim.parallel.worker_failures")
                        if wd is None:
                            # legacy behavior: any failure falls back
                            # in-process (where a deterministic error
                            # re-raises exactly as it would serially)
                            retryable.append(chunk)
                        else:
                            fatal.append(chunk)
                if wd is not None and pending:
                    # repro: lint-ok[REP002] compared against worker wall-clock heartbeats
                    now = _time.time()
                    for chunk_id, _chunk in pending.values():
                        try:
                            beat = heartbeats.get(chunk_id)  # type: ignore[union-attr]
                        except Exception:  # pragma: no cover - manager died
                            count("sim.resilience.heartbeat_errors")
                            beat = None
                        if beat is None:
                            continue  # not started yet; cannot be hung
                        age = now - float(beat)
                        if age > wd.soft_timeout_s and chunk_id not in soft_flagged:
                            soft_flagged.add(chunk_id)
                            count("sim.resilience.soft_timeouts")
                        if age > wd.hard_timeout_s:
                            hung = True
                    if hung:
                        count("sim.resilience.hung_chunks", float(len(pending)))
                        emit_resilience_event(
                            "hung-pool-killed",
                            pending_chunks=len(pending),
                            hard_timeout_s=wd.hard_timeout_s,
                        )
                        for future in pending:
                            future.cancel()
                        _kill_pool_processes(pool)
                        retryable.extend(chunk for _, chunk in pending.values())
                        pending = {}
                        pool_lost = True
            if hung:
                pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        # the pool itself failed (submission error, fork failure):
        # everything not yet absorbed may be requeued
        count("sim.parallel.worker_failures")
        pool_lost = True
        claimed = {id(chunk) for chunk in retryable} | {id(chunk) for chunk in fatal}
        retryable.extend(
            chunk
            for chunk in chunks
            if id(chunk) not in claimed and not all(done[i] for i, _ in chunk)
        )
    finally:
        if manager is not None:
            manager.shutdown()
    return retryable, fatal, pool_lost


def _run_parallel(
    fn: Callable[[S], R],
    specs: list[S],
    config: SweepConfig,
    metrics: MetricsRegistry | None,
    on_point: Callable[[int, R], None] | None = None,
) -> list[R]:
    """Fan ``specs`` over the pool, under one ``parallel.dispatch`` span
    when the parent is tracing (worker spans replay beneath it)."""
    with trace_spans.span(
        "parallel.dispatch", points=len(specs), jobs=min(config.jobs, len(specs))
    ) as dispatch_span:
        return _dispatch(fn, specs, config, metrics, on_point, dispatch_span)


def _dispatch(
    fn: Callable[[S], R],
    specs: list[S],
    config: SweepConfig,
    metrics: MetricsRegistry | None,
    on_point: Callable[[int, R], None] | None,
    dispatch_span,
) -> list[R]:
    wd = config.watchdog
    jobs = min(config.jobs, len(specs))
    chunk_size = config.chunk_size or max(1, ceil(len(specs) / (jobs * 4)))
    indexed = list(enumerate(specs))
    chunks = _chunked(indexed, chunk_size)
    results: list[R | None] = [None] * len(specs)
    done = [False] * len(specs)
    parent_sink = _sink_mod.get_sink()
    tracer = trace_spans.get_tracer()
    trace_id = tracer.trace_id if tracer is not None else None
    remote = {"points": 0}
    start = perf_counter()

    def absorb(chunk_results, records, snapshot, spans=None) -> None:
        for index, value in chunk_results:
            results[index] = value
            done[index] = True
            remote["points"] += 1
            if on_point is not None:
                on_point(index, value)
        if parent_sink is not None:
            for payload in records:
                parent_sink.write(RunRecord.from_dict(payload))
        if metrics is not None and snapshot:
            merge_snapshot(metrics, snapshot)
        if tracer is not None and spans:
            tracer.replay(
                spans,
                parent_id=dispatch_span.span_id if dispatch_span is not None else None,
            )

    def count(name: str, amount: float = 1.0) -> None:
        if metrics is not None:
            metrics.counter(name).inc(amount)

    if metrics is not None:
        metrics.counter("sim.parallel.chunks").inc(len(chunks))
        # pre-register the failure counters so a clean run reports
        # explicit zeros rather than absent instruments
        metrics.counter("sim.parallel.worker_failures")
        metrics.counter("sim.parallel.fallback_points")

    tracker = PointTracker(wd.quarantine_after if wd is not None else 1)
    outstanding = chunks
    in_process: list[list[tuple[int, S]]] = []
    pool_losses = 0
    round_no = 0

    while outstanding:
        round_no += 1
        retryable, fatal, pool_lost = _pool_round(
            fn, outstanding, jobs, config, metrics, absorb, done, trace_id
        )
        if pool_lost:
            pool_losses += 1
            count("sim.resilience.pool_losses")
        outstanding = []
        in_process.extend(fatal)
        if wd is None:
            # pre-watchdog behavior: one pool pass, failures fall back
            in_process.extend(retryable)
            break
        requeue: list[tuple[int, S]] = []
        for chunk in retryable:
            for index, spec in chunk:
                if done[index]:
                    continue
                if tracker.record_failure(index):
                    count("sim.resilience.quarantined_points")
                    emit_resilience_event(
                        "point-quarantined",
                        point=index,
                        failures=tracker.failures[index],
                    )
                    in_process.append([(index, spec)])
                else:
                    requeue.append((index, spec))
        if requeue:
            exhausted = round_no > wd.retry.max_retries
            if pool_losses >= wd.pool_loss_limit or exhausted:
                count("sim.resilience.degraded_points", float(len(requeue)))
                emit_resilience_event(
                    "pool-degraded",
                    points=len(requeue),
                    pool_losses=pool_losses,
                    rounds=round_no,
                )
                in_process.extend([point] for point in requeue)
            else:
                count("sim.resilience.requeued_points", float(len(requeue)))
                backoff = wd.retry.backoff(round_no)
                if backoff > 0:
                    if metrics is not None:
                        metrics.timer("sim.resilience.retry_backoff_wall").record(backoff)
                    _time.sleep(backoff)
                outstanding = _chunked(requeue, chunk_size)

    for chunk in in_process:
        count("sim.parallel.fallback_points", float(len(chunk)))
        for index, spec in chunk:
            if not done[index]:
                # in-process: the parent's cache and sink apply directly
                value = fn(spec)
                results[index] = value
                done[index] = True
                if on_point is not None:
                    on_point(index, value)

    if metrics is not None:
        metrics.counter("sim.parallel.points_remote").inc(remote["points"])
        metrics.timer("sim.parallel.dispatch_wall").record(perf_counter() - start)
    missing = [i for i, flag in enumerate(done) if not flag]
    if missing:  # pragma: no cover - defensive; fallback covers all paths
        raise RuntimeError(f"sweep engine lost points {missing[:5]}...")
    return results  # type: ignore[return-value]
