"""Sweep journal: crash-safe checkpointing for ``run_points`` sweeps.

A long figure sweep is a sequence of pure, deterministic points; losing
the whole run to a crash, a kill, or a Ctrl-C is pure waste.  The
journal makes sweeps resumable: every completed point is appended to a
JSON-Lines file -- one fsync'd line per point, each carrying its own
checksum -- keyed by a **point fingerprint** (a SHA-256 over the point
function's identity and the canonical encoding of its spec).  On
resume, any point whose fingerprint is already journaled is served from
the journal instead of recomputed; because cached results round-trip
JSON exactly (the same property the schedule cache relies on), a
resumed sweep is bit-identical to an uninterrupted one.

Robustness properties:

- **Atomic, durable appends.**  A record is one ``write()`` of one full
  line, flushed and ``fsync``'d before :meth:`SweepJournal.append`
  returns, so a crash can lose at most the point in flight, never a
  completed one.
- **Self-healing loads.**  A truncated tail (torn write), a corrupt
  line, a checksum mismatch, or a stale schema is *skipped and
  counted*, never fatal: the affected points simply recompute.  If two
  concurrent runs ever interleave in one file, records written under
  the other run's header are skipped too (counted as ``foreign``)
  rather than served as this run's results.  The journal is an
  optimization, not a source of truth.
- **Content-addressed run ids.**  :func:`derive_run_id` hashes the
  sweep definition (experiment ids, mode, cache schema) the same way
  the schedule cache hashes artifacts, so ``--resume`` can re-derive
  the id of the run it is resuming without any side channel.

The journal composes with the schedule cache (which deduplicates
*artifacts* within and across runs) by deduplicating *points* across
process lifetimes of the same run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from enum import Enum
from pathlib import Path
from typing import Callable

from repro.obs import trace_spans

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalLoad",
    "SweepJournal",
    "derive_run_id",
    "load_journal",
    "point_fingerprint",
]

#: Bump when the journal record format (or the meaning of a stored
#: result) changes; old journals then resume nothing rather than
#: resuming wrongly.
JOURNAL_SCHEMA = 1

#: Sentinel distinguishing "not journaled" from a journaled ``None``.
_MISS = object()


def _canonical(obj: object) -> object:
    """A JSON-safe canonical form of a point spec component.

    Handles the primitives, containers, enums, and (frozen) dataclasses
    that point specs are built from; anything else is rejected so a
    fingerprint can never silently depend on an unstable ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)  # type: ignore[type-var]
    if isinstance(obj, dict):
        return {str(key): _canonical(value) for key, value in sorted(obj.items())}
    if isinstance(obj, Enum):
        return [type(obj).__name__, obj.name]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        return [type(obj).__name__, fields]
    raise TypeError(
        f"cannot fingerprint spec component {obj!r} of type {type(obj).__name__}"
    )


def _digest(payload: object) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def point_fingerprint(fn: Callable, spec: object) -> str:
    """SHA-256 fingerprint of one sweep point: *which function* over
    *which spec*.

    Stable across processes, platforms, and Python versions; moving or
    renaming the point function deliberately invalidates its journal
    entries (its results may have changed meaning).
    """
    identity = [
        getattr(fn, "__module__", ""),
        getattr(fn, "__qualname__", repr(fn)),
    ]
    return _digest(
        {"schema": JOURNAL_SCHEMA, "fn": identity, "spec": _canonical(spec)}
    )


def derive_run_id(*components: object) -> str:
    """A 12-hex-char run id content-addressed by the sweep definition.

    The same definition always derives the same id, which is what lets
    ``--resume`` find the journal of a crashed run without the user
    copying anything: re-issue the same command with ``--resume``.
    """
    return _digest({"schema": JOURNAL_SCHEMA, "run": [_canonical(c) for c in components]})[
        :12
    ]


def _record_checksum(fingerprint: str, result: object) -> str:
    return _digest({"schema": JOURNAL_SCHEMA, "fp": fingerprint, "result": result})[:16]


@dataclasses.dataclass(slots=True)
class JournalLoad:
    """Outcome of reading a journal file back."""

    results: dict[str, object]
    records: int = 0
    corrupt: int = 0
    #: intact records belonging to a *different* run id (two writers
    #: interleaved in one file); skipped, never adopted.
    foreign: int = 0
    run_id: str | None = None
    meta: dict | None = None


def load_journal(path: str | os.PathLike, run_id: str | None = None) -> JournalLoad:
    """Read a journal file, skipping (and counting) damaged records.

    Never raises on damaged content: unparseable lines, checksum
    mismatches, and stale schemas are quarantined into the ``corrupt``
    count.  A missing file is an empty load.

    When ``run_id`` is given, only records written under a header with
    that id are adopted: if two concurrent runs ever interleave in one
    file (a misconfigured shared journal path), the other run's
    records are counted in ``foreign`` and skipped rather than served
    as this run's results.  Without ``run_id`` every intact record is
    adopted (the single-writer common case).
    """
    with trace_spans.span("journal.load", path=str(path)) as sp:
        state = _load_journal(path, run_id)
        if sp is not None:
            sp.set(records=state.records, corrupt=state.corrupt, foreign=state.foreign)
        return state


def _load_journal(path: str | os.PathLike, run_id: str | None = None) -> JournalLoad:
    state = JournalLoad(results={})
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
    except OSError:
        return state
    # records before any header, or under a matching/anonymous header,
    # are "active"; a header naming a different run deactivates until a
    # matching header appears again.
    active = True
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            state.corrupt += 1
            continue
        if not isinstance(payload, dict) or payload.get("schema") != JOURNAL_SCHEMA:
            state.corrupt += 1
            continue
        if payload.get("header"):
            header_id = payload.get("run_id")
            active = (
                run_id is None or not isinstance(header_id, str) or header_id == run_id
            )
            if state.run_id is None or active:
                state.run_id = header_id
            if active:
                meta = payload.get("meta")
                state.meta = meta if isinstance(meta, dict) else None
            continue
        fingerprint = payload.get("fp")
        checksum = payload.get("sum")
        if not isinstance(fingerprint, str) or not isinstance(checksum, str):
            state.corrupt += 1
            continue
        result = payload.get("result")
        if _record_checksum(fingerprint, result) != checksum:
            state.corrupt += 1
            continue
        if not active:
            state.foreign += 1
            continue
        state.results[fingerprint] = result
        state.records += 1
    return state


class SweepJournal:
    """Append-only checkpoint log for one sweep run.

    One instance is the single writer for its file (the parent process
    of a sweep; workers never touch the journal).  Opening with
    ``resume=True`` loads every intact record first, so
    :meth:`lookup` can serve already-computed points; opening without
    ``resume`` truncates any previous file so two distinct runs never
    interleave in one journal.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        run_id: str | None = None,
        meta: dict | None = None,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.meta = meta
        self.resumed_records = 0
        self.corrupt_records = 0
        self.foreign_records = 0
        self.appended = 0
        self.skipped_appends = 0
        self._seen: dict[str, object] = {}
        self._file = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            load = load_journal(self.path, run_id=self.run_id)
            self._seen = load.results
            self.resumed_records = load.records
            self.corrupt_records = load.corrupt
            self.foreign_records = load.foreign
            if self.run_id is None:
                self.run_id = load.run_id
        # a torn final line (killed mid-write) has no trailing newline;
        # appending straight after it would splice the next record onto
        # the stump and destroy both.  Seal the tear first.
        torn_tail = False
        if resume:
            try:
                with open(self.path, "rb") as raw:
                    raw.seek(-1, os.SEEK_END)
                    torn_tail = raw.read(1) != b"\n"
            except (OSError, ValueError):
                torn_tail = False
        self._file = open(self.path, "a" if resume else "w", encoding="utf-8")
        if torn_tail:
            self._file.write("\n")
        if not resume or (self.resumed_records == 0 and self.corrupt_records == 0):
            self._write_line(
                {
                    "schema": JOURNAL_SCHEMA,
                    "header": True,
                    "run_id": self.run_id,
                    "meta": self.meta,
                }
            )

    # -- writing -------------------------------------------------------

    def _write_line(self, payload: dict) -> None:
        assert self._file is not None
        self._file.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def append(self, fingerprint: str, result: object) -> bool:
        """Durably record one completed point; returns ``False`` (and
        records nothing) when the result is not JSON-serializable --
        the point will simply recompute on resume."""
        if self._file is None or self._file.closed:
            return False
        try:
            checksum = _record_checksum(fingerprint, result)
            payload = {
                "schema": JOURNAL_SCHEMA,
                "fp": fingerprint,
                "result": result,
                "sum": checksum,
            }
            line = json.dumps(payload, separators=(",", ":"))
        except (TypeError, ValueError):
            self.skipped_appends += 1
            return False
        with trace_spans.span("journal.append", fp=fingerprint[:12]):
            self._file.write(line + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        self._seen[fingerprint] = result
        self.appended += 1
        return True

    # -- reading -------------------------------------------------------

    def lookup(self, fingerprint: str) -> object:
        """The journaled result, or the module-private miss sentinel."""
        return self._seen.get(fingerprint, _MISS)

    @staticmethod
    def is_miss(value: object) -> bool:
        return value is _MISS

    def __len__(self) -> int:
        return len(self._seen)

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
