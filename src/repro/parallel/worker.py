"""Fabric worker host: ``repro-hypercube worker --connect HOST:PORT``.

One worker process serves one TCP link to a
:class:`~repro.parallel.fabric.TcpCoordinator`: it executes the
coordinator's chunks one at a time through the same
:func:`~repro.parallel.fabric.run_chunk` the local process pool uses,
so telemetry buffering, per-chunk metric deltas, and span snapshots
ride home in the result frame exactly as they do through a pool
future.  Scale out by starting more workers -- on this host or any
host that can reach the coordinator.

Liveness is a dedicated heartbeat thread, and its rule encodes the
slow-vs-hung distinction at fleet scope: a beat is sent only while the
worker is *idle* or while chunk execution has made *progress* (another
point started) since the last beat.  A worker whose point function is
wedged therefore goes silent, the coordinator's hard timeout fires,
and the chunk is requeued elsewhere -- without any clock agreement
between hosts, because the coordinator only measures receive-to-receive
gaps on its own monotonic clock.

The coordinator's liveness matters too: if a beat cannot be sent while
a chunk is running, the coordinator is gone and nobody will accept the
result, so the worker exits hard (:data:`ORPHANED_EXIT`) rather than
burn a host on orphaned work.  An idle worker notices the same thing
as EOF on its blocking read and exits cleanly.

Workers start cold.  With ``--cache-url`` (or the coordinator's
advertised URL) the local schedule cache is extended with the fleet
tier (:mod:`repro.parallel.fabric_cache`), so every host shares one
warm set of content-addressed schedule tables.
"""

from __future__ import annotations

import os
import select
import socket
import threading
import time
import traceback

from repro.parallel.cache import ScheduleCache, activate_cache
from repro.parallel.fabric import recv_frame, run_chunk, send_frame
from repro.parallel.fabric_cache import RemoteCacheClient, TieredCache

__all__ = ["ORPHANED_EXIT", "run_worker"]

#: Exit code for a worker that abandoned a chunk because its
#: coordinator vanished mid-execution (distinct from 1, a clean
#: connection loss while idle, so process supervisors can tell lost
#: work from a finished fleet).
ORPHANED_EXIT = 70


class _ProgressBeats:
    """Mapping facade over a progress counter.

    :func:`~repro.parallel.fabric.run_chunk` "beats" by assigning into
    its ``heartbeats`` mapping before every point; here each assignment
    just advances a counter the heartbeat thread samples, turning
    per-point progress into the beat/no-beat decision.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def __setitem__(self, _key: object, _value: object) -> None:
        self.count += 1


def _parse_endpoint(endpoint: str) -> tuple[str, int]:
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {endpoint!r}")
    return host, int(port)


def _link_dead(sock: socket.socket) -> bool:
    """Whether the coordinator closed the link, without consuming data.

    Used while a chunk is running (the main thread is not reading): a
    readable socket whose peek returns EOF is a dead link.  A pending
    frame (a shutdown broadcast) peeks as data and is left for the main
    loop.
    """
    try:
        readable, _, _ = select.select([sock], [], [], 0)
        if not readable:
            return False
        return sock.recv(1, socket.MSG_PEEK) == b""
    except (OSError, ValueError):
        return True


def _connect(host: str, port: int, timeout_s: float) -> socket.socket | None:
    """Dial the coordinator, retrying with a short fixed delay until
    ``timeout_s`` runs out (workers routinely start before it)."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.2)


def run_worker(
    connect: str,
    cache_dir: str | None = None,
    cache_url: str | None = None,
    label: str | None = None,
    connect_timeout_s: float = 30.0,
    beat_s: float = 0.25,
) -> int:
    """Serve one coordinator link until shutdown; returns the exit code.

    ``0``: coordinator sent an orderly shutdown.  ``1``: could not
    connect, or the connection closed while idle.  The orphaned-chunk
    path does not return -- it is :func:`os._exit` with
    :data:`ORPHANED_EXIT`.
    """
    host, port = _parse_endpoint(connect)
    sock = _connect(host, port, connect_timeout_s)
    if sock is None:
        print(f"worker: no coordinator at {connect} after {connect_timeout_s:.0f}s", flush=True)
        return 1
    worker_id = label or f"{socket.gethostname()}-{os.getpid()}"
    send_lock = threading.Lock()
    send_frame(
        sock,
        {
            "type": "hello",
            "worker_id": worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
        },
        send_lock,
    )
    welcome = recv_frame(sock)
    if not isinstance(welcome, dict) or welcome.get("type") != "welcome":
        print("worker: coordinator rejected handshake", flush=True)
        return 1
    if cache_url is None:
        cache_url = welcome.get("cache_url")

    if cache_url:
        remote = RemoteCacheClient(cache_url)
        activate_cache(TieredCache(cache_dir, remote=remote))
        print(f"worker {worker_id}: fleet cache tier at {remote.describe()}", flush=True)
    else:
        activate_cache(ScheduleCache(cache_dir))

    beats = _ProgressBeats()
    busy = threading.Event()
    stopping = threading.Event()

    def beat_loop() -> None:
        last_progress = beats.count
        while not stopping.wait(beat_s):
            progress = beats.count
            executing = busy.is_set()
            if executing and progress == last_progress:
                # wedged point: go silent so the coordinator's hard
                # timeout decides -- but if it already dropped us, the
                # chunk is orphaned and this host should come back
                if not stopping.is_set() and _link_dead(sock):
                    print(f"worker {worker_id}: dropped by coordinator mid-chunk", flush=True)
                    os._exit(ORPHANED_EXIT)
                continue
            last_progress = progress
            try:
                send_frame(sock, {"type": "heartbeat"}, send_lock)
            except OSError:
                if stopping.is_set():
                    return
                if executing:
                    # nobody will accept this chunk's result; don't
                    # finish it -- release the host immediately
                    print(f"worker {worker_id}: coordinator lost mid-chunk", flush=True)
                    os._exit(ORPHANED_EXIT)
                return

    beater = threading.Thread(target=beat_loop, name="worker-beat", daemon=True)
    beater.start()
    print(f"worker {worker_id}: serving {connect}", flush=True)

    chunks_done = 0
    try:
        while True:
            try:
                msg = recv_frame(sock)
            except (OSError, ValueError):
                msg = None
            if msg is None:
                print(f"worker {worker_id}: connection closed ({chunks_done} chunks)", flush=True)
                return 1
            kind = msg.get("type") if isinstance(msg, dict) else None
            if kind == "shutdown":
                print(f"worker {worker_id}: shutdown ({chunks_done} chunks)", flush=True)
                return 0
            if kind != "chunk":
                continue  # unknown frame: a newer coordinator's extension
            chunk_id = msg.get("chunk_id")
            busy.set()
            try:
                payload = run_chunk(
                    msg["fn"], msg["chunk"], chunk_id, beats, msg.get("trace_id")
                )
            except BaseException:
                busy.clear()
                reply = {
                    "type": "error",
                    "chunk_id": chunk_id,
                    "error": traceback.format_exc(limit=20),
                }
            else:
                busy.clear()
                chunks_done += 1
                reply = {"type": "result", "chunk_id": chunk_id, "payload": payload}
            try:
                send_frame(sock, reply, send_lock)
            except OSError:
                print(f"worker {worker_id}: coordinator lost sending chunk {chunk_id}", flush=True)
                return 1
    finally:
        stopping.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
