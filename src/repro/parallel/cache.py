"""Content-addressed cache for multicast schedules and step tables.

The figure sweeps recompute the same deterministic artifacts over and
over: Figures 11 and 12 share every simulated point, a warm re-run of
any figure shares all of them, and the fault sweeps rebuild identical
trees per algorithm.  Every cacheable artifact here is a pure function
of its inputs, so entries are addressed by a SHA-256 key over the
canonical JSON of those inputs -- (kind, algorithm, n, source,
destination set, port model, resolution order, message size, timing
constants) -- and never invalidated: a new input is a new key, and a
stale value is impossible by construction.  Change the *semantics* of
an artifact (what a value means for the same inputs) and you must bump
:data:`CACHE_SCHEMA`, which namespaces every key.

Two layers:

- an in-process dict (always on while a cache is active);
- an optional on-disk layer under ``cache_dir`` -- one JSON file per
  entry at ``<key[:2]>/<key>.json``, written atomically (temp file +
  ``os.replace``) and created race-safely, so any number of worker
  processes can share one directory.

Cached values are plain JSON scalars/containers; Python's ``json``
round-trips ``int`` and ``float`` exactly, which is what makes a warm
cache bit-identical to a cold one (the regression suite checks this).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable

from repro.core.paths import ResolutionOrder
from repro.multicast.ports import PortModel
from repro.obs.metrics import MetricsRegistry
from repro.simulator.params import Timings

__all__ = [
    "CACHE_SCHEMA",
    "ScheduleCache",
    "activate_cache",
    "cache_key",
    "cached_delay_stats",
    "cached_schedule_table",
    "get_active_cache",
]

#: Bump when the *meaning* of a cached value changes for the same key
#: inputs; old entries then become unreachable rather than wrong.
CACHE_SCHEMA = 1


def cache_key(kind: str, **fields: object) -> str:
    """SHA-256 hex key over the canonical JSON of ``fields``.

    ``fields`` must be JSON-serializable; key order does not matter
    (the encoding sorts them).
    """
    payload = {"schema": CACHE_SCHEMA, "kind": kind, **fields}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ScheduleCache:
    """Two-layer (memory + optional disk) content-addressed cache."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        #: registry receiving ``sim.parallel.cache_*`` metrics; swappable
        #: so workers can attribute per-chunk deltas to fresh registries.
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.puts = 0
        self._memory: dict[str, object] = {}
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- metric helpers ------------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"sim.parallel.{name}").inc()

    # -- layers --------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> object | None:
        """The cached value, or ``None`` on a miss.

        (``None`` is never a cached value; every artifact here is a
        non-empty dict.)
        """
        value = self._memory.get(key)
        if value is not None:
            self.hits += 1
            self._count("cache_hits")
            return value
        if self.cache_dir is not None:
            path = self._disk_path(key)
            try:
                with open(path, "r", encoding="utf-8") as f:
                    value = json.load(f)
            except (OSError, ValueError):
                value = None  # absent or corrupt: recompute
            if value is not None:
                self._memory[key] = value
                self.hits += 1
                self.disk_hits += 1
                self._count("cache_hits")
                self._count("cache_disk_hits")
                return value
        self.misses += 1
        self._count("cache_misses")
        return None

    def put(self, key: str, value: object) -> None:
        """Store a JSON-safe value under ``key`` (memory, then disk)."""
        self._memory[key] = value
        self.puts += 1
        self._count("cache_puts")
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # atomic publish: concurrent writers of the same key race
        # harmlessly -- both write identical bytes
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(value, f, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            self._count("cache_disk_errors")
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
        }


# -- the active cache -------------------------------------------------
#
# Process-global, installed by the sweep engine (parent: for the
# context's duration; workers: at pool initialization).  With no active
# cache the helpers below compute directly, so un-sweep callers see
# exactly the pre-cache behavior.

_active: ScheduleCache | None = None


def activate_cache(cache: ScheduleCache | None) -> ScheduleCache | None:
    """Install (or with ``None`` clear) the process-wide cache; returns
    the previous one so callers can restore it."""
    global _active
    previous = _active
    _active = cache
    return previous


def get_active_cache() -> ScheduleCache | None:
    return _active


# -- cached artifacts --------------------------------------------------


def _dest_key(destinations: Iterable[int]) -> list[int]:
    return sorted(int(d) for d in destinations)


def cached_schedule_table(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> dict:
    """Step table for one multicast: ``{"max_step", "dest_steps"}``.

    ``dest_steps`` maps destination address (as a string, for JSON) to
    the step in which it receives the message.  Computed via the
    registry algorithm on a miss; served from the active cache on a
    hit.
    """
    dests = _dest_key(destinations)
    key = cache_key(
        "schedule",
        algorithm=algorithm,
        n=n,
        source=source,
        dests=dests,
        ports=[ports.ports, ports.name],
        order=order.name,
    )
    cache = get_active_cache()
    if cache is not None:
        value = cache.get(key)
        if value is not None:
            return value  # type: ignore[return-value]
    from repro.multicast.registry import get_algorithm

    sched = get_algorithm(algorithm).schedule(n, source, dests, ports, order)
    value = {
        "max_step": sched.max_step,
        "dest_steps": {str(dst): step for dst, step in sorted(sched.dest_steps.items())},
    }
    if cache is not None:
        cache.put(key, value)
    return value


def cached_delay_stats(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    size: int,
    timings: Timings,
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> dict:
    """Simulated delay summary for one multicast:
    ``{"avg_delay_us", "max_delay_us", "total_blocked_us"}``.

    The full wormhole simulation runs on a miss; the summary triple is
    what every delay experiment consumes, so that is what is cached.
    """
    dests = _dest_key(destinations)
    key = cache_key(
        "delay",
        algorithm=algorithm,
        n=n,
        source=source,
        dests=dests,
        size=size,
        timings={
            "t_setup": timings.t_setup,
            "t_recv": timings.t_recv,
            "t_byte": timings.t_byte,
            "t_hop": timings.t_hop,
        },
        ports=[ports.ports, ports.name],
        order=order.name,
    )
    cache = get_active_cache()
    if cache is not None:
        value = cache.get(key)
        if value is not None:
            return value  # type: ignore[return-value]
    from repro.multicast.registry import get_algorithm
    from repro.simulator.run import simulate_multicast

    tree = get_algorithm(algorithm).build_tree(n, source, dests, order)
    res = simulate_multicast(tree, size=size, timings=timings, ports=ports, label=algorithm)
    value = {
        "avg_delay_us": res.avg_delay,
        "max_delay_us": res.max_delay,
        "total_blocked_us": res.total_blocked_time,
    }
    if cache is not None:
        cache.put(key, value)
    return value
