"""Content-addressed cache for multicast schedules and step tables.

The figure sweeps recompute the same deterministic artifacts over and
over: Figures 11 and 12 share every simulated point, a warm re-run of
any figure shares all of them, and the fault sweeps rebuild identical
trees per algorithm.  Every cacheable artifact here is a pure function
of its inputs, so entries are addressed by a SHA-256 key over the
canonical JSON of those inputs -- (kind, algorithm, n, source,
destination set, port model, resolution order, message size, timing
constants) -- and never invalidated: a new input is a new key, and a
stale value is impossible by construction.  Change the *semantics* of
an artifact (what a value means for the same inputs) and you must bump
:data:`CACHE_SCHEMA`, which namespaces every key.

Two layers:

- an in-process dict (always on while a cache is active);
- an optional on-disk layer under ``cache_dir`` -- one JSON file per
  entry at ``<key[:2]>/<key>.json``, written atomically (temp file +
  ``os.replace``) and created race-safely, so any number of worker
  processes can share one directory.

Every disk entry is a self-verifying envelope -- ``{"schema", "key",
"checksum", "value"}`` with a SHA-256 checksum over the canonical JSON
of the value -- and every disk read validates it.  A corrupt,
truncated, stale-schema, or mis-keyed entry is **quarantined** (moved
into ``<cache_dir>/_quarantine/``), counted in
``sim.resilience.cache_quarantined``, and treated as a miss, so the
value recomputes and the bad bytes never poison a sweep.
``repro-hypercube cache verify|gc`` audits and cleans a shared
directory offline (see docs/RESILIENCE.md).

Cached values are plain JSON scalars/containers; Python's ``json``
round-trips ``int`` and ``float`` exactly, which is what makes a warm
cache bit-identical to a cold one (the regression suite checks this).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.paths import ResolutionOrder
from repro.multicast.ports import PortModel
from repro.obs import trace_spans
from repro.obs.metrics import MetricsRegistry
from repro.simulator.params import Timings

__all__ = [
    "CACHE_SCHEMA",
    "CacheAudit",
    "QUARANTINE_DIR",
    "ScheduleCache",
    "activate_cache",
    "cache_key",
    "cached_delay_stats",
    "cached_schedule_table",
    "compute_delay_stats",
    "compute_schedule_table",
    "delay_stats_key",
    "gc_cache_dir",
    "get_active_cache",
    "schedule_table_key",
    "verify_cache_dir",
]

#: Subdirectory of a cache dir holding quarantined (corrupt/stale)
#: entries until ``cache gc`` removes them.
QUARANTINE_DIR = "_quarantine"

#: Bump when the *meaning* of a cached value changes for the same key
#: inputs; old entries then become unreachable rather than wrong.
CACHE_SCHEMA = 1


def cache_key(kind: str, **fields: object) -> str:
    """SHA-256 hex key over the canonical JSON of ``fields``.

    ``fields`` must be JSON-serializable; key order does not matter
    (the encoding sorts them).
    """
    payload = {"schema": CACHE_SCHEMA, "kind": kind, **fields}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _value_checksum(value: object) -> str:
    """SHA-256 (truncated) over the canonical JSON of a cached value."""
    text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _encode_entry(key: str, value: object) -> str:
    """The self-verifying on-disk envelope for one entry."""
    return json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "key": key,
            "checksum": _value_checksum(value),
            "value": value,
        },
        separators=(",", ":"),
    )


def _decode_entry(key: str, text: str) -> tuple[object, str | None]:
    """``(value, None)`` for an intact entry, else ``(None, reason)``.

    Reasons: ``"corrupt"`` (unparseable / not an envelope / checksum
    mismatch), ``"stale-schema"`` (written under another
    :data:`CACHE_SCHEMA`), ``"key-mismatch"`` (entry filed under the
    wrong name -- a tampered or mis-copied file).
    """
    try:
        payload = json.loads(text)
    except ValueError:
        return None, "corrupt"
    if not isinstance(payload, dict) or "value" not in payload or "checksum" not in payload:
        return None, "corrupt"
    if payload.get("schema") != CACHE_SCHEMA:
        return None, "stale-schema"
    if payload.get("key") != key:
        return None, "key-mismatch"
    value = payload["value"]
    if _value_checksum(value) != payload["checksum"]:
        return None, "corrupt"
    return value, None


class ScheduleCache:
    """Two-layer (memory + optional disk) content-addressed cache."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        #: registry receiving ``sim.parallel.cache_*`` metrics; swappable
        #: so workers can attribute per-chunk deltas to fresh registries.
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.puts = 0
        self.quarantined = 0
        self._memory: dict[str, object] = {}
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- metric helpers ------------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"sim.parallel.{name}").inc()

    def _count_full(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- layers --------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a damaged entry out of the addressable namespace.

        Never raises: quarantine is best-effort damage containment on
        the read path (the entry is already a miss either way).
        """
        assert self.cache_dir is not None
        self.quarantined += 1
        self._count_full("sim.resilience.cache_quarantined")
        target_dir = self.cache_dir / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / f"{reason}-{path.name}")
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def get(self, key: str) -> object | None:
        """The cached value, or ``None`` on a miss.

        (``None`` is never a cached value; every artifact here is a
        non-empty dict.)  A disk entry that fails validation -- corrupt
        bytes, a truncated write, a stale schema, a key mismatch -- is
        quarantined and reported as a miss so the value recomputes.
        """
        value = self._memory.get(key)
        if value is not None:
            self.hits += 1
            self._count("cache_hits")
            return value
        if self.cache_dir is not None:
            path = self._disk_path(key)
            with trace_spans.span("cache.disk_read", key=key[:12]) as _sp:
                try:
                    with open(path, "r", encoding="utf-8") as f:
                        text = f.read()
                except OSError:
                    text = None  # absent: plain miss
                if text is not None:
                    value, damage = _decode_entry(key, text)
                    if damage is not None:
                        self._quarantine(path, damage)
                        value = None
                if _sp is not None:
                    _sp.set(hit=value is not None)
            if value is not None:
                self._memory[key] = value
                self.hits += 1
                self.disk_hits += 1
                self._count("cache_hits")
                self._count("cache_disk_hits")
                return value
        self.misses += 1
        self._count("cache_misses")
        return None

    def put(self, key: str, value: object) -> None:
        """Store a JSON-safe value under ``key`` (memory, then disk)."""
        self._memory[key] = value
        self.puts += 1
        self._count("cache_puts")
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        with trace_spans.span("cache.disk_write", key=key[:12]):
            path.parent.mkdir(parents=True, exist_ok=True)
            # atomic publish: concurrent writers of the same key race
            # harmlessly -- both write identical bytes
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    f.write(_encode_entry(key, value))
                os.replace(tmp, path)
            except OSError:
                self._count("cache_disk_errors")
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def __len__(self) -> int:
        return len(self._memory)

    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup).

        The one canonical hit-ratio definition -- ``hits / (hits +
        misses)`` -- shared by the benchmark ledger, the service
        ``/metrics`` endpoint, and anything else reporting cache
        effectiveness, so no consumer recomputes it from raw counters.
        """
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, int | float]:
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "quarantined": self.quarantined,
            "hit_ratio": self.hit_ratio(),
        }


# -- offline integrity audit ------------------------------------------


@dataclass(slots=True)
class CacheAudit:
    """Result of :func:`verify_cache_dir`."""

    ok: int = 0
    #: relative paths of entries that failed validation, by reason
    damaged: dict[str, list[str]] = field(default_factory=dict)
    #: entries moved to quarantine (only when ``repair=True``)
    repaired: int = 0
    #: files already sitting in the quarantine subdirectory
    quarantined_pending: int = 0
    #: orphaned atomic-write temp files
    stray_tmp: int = 0

    @property
    def damaged_total(self) -> int:
        return sum(len(paths) for paths in self.damaged.values())

    @property
    def clean(self) -> bool:
        return self.damaged_total == 0


def _entry_files(cache_dir: Path):
    for path in sorted(cache_dir.rglob("*.json")):
        if QUARANTINE_DIR in path.parts:
            continue
        yield path


def verify_cache_dir(cache_dir: str | os.PathLike, repair: bool = False) -> CacheAudit:
    """Validate every entry of a shared cache directory.

    Each file is decoded exactly as the read path would decode it; with
    ``repair=True`` damaged entries are moved into the quarantine
    subdirectory (the same containment the read path applies lazily).

    Raises:
        FileNotFoundError: when ``cache_dir`` does not exist.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        raise FileNotFoundError(f"cache directory {root} does not exist")
    audit = CacheAudit()
    quarantine = root / QUARANTINE_DIR
    audit.quarantined_pending = sum(1 for p in quarantine.glob("*") if p.is_file())
    audit.stray_tmp = sum(1 for p in root.rglob("*.tmp") if QUARANTINE_DIR not in p.parts)
    for path in _entry_files(root):
        key = path.stem
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            damage = "unreadable"
        else:
            _, damage = _decode_entry(key, text)
        if damage is None:
            audit.ok += 1
            continue
        audit.damaged.setdefault(damage, []).append(str(path.relative_to(root)))
        if repair:
            try:
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(path, quarantine / f"{damage}-{path.name}")
                audit.repaired += 1
            except OSError:
                pass
    return audit


def gc_cache_dir(cache_dir: str | os.PathLike) -> dict[str, int]:
    """Sweep the garbage a resilient cache accumulates.

    Deletes quarantined entries, orphaned ``*.tmp`` files from
    interrupted atomic writes, and any empty key subdirectories.
    Returns removal counts.  Never touches intact entries.

    Raises:
        FileNotFoundError: when ``cache_dir`` does not exist.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        raise FileNotFoundError(f"cache directory {root} does not exist")
    removed = {"quarantined": 0, "tmp": 0, "empty_dirs": 0}
    quarantine = root / QUARANTINE_DIR
    if quarantine.is_dir():
        for path in quarantine.glob("*"):
            try:
                path.unlink()
                removed["quarantined"] += 1
            except OSError:
                pass
        try:
            quarantine.rmdir()
        except OSError:
            pass
    for path in list(root.rglob("*.tmp")):
        try:
            path.unlink()
            removed["tmp"] += 1
        except OSError:
            pass
    for path in sorted((p for p in root.iterdir() if p.is_dir()), reverse=True):
        try:
            path.rmdir()
            removed["empty_dirs"] += 1
        except OSError:
            pass  # not empty
    return removed


# -- the active cache -------------------------------------------------
#
# Process-global, installed by the sweep engine (parent: for the
# context's duration; workers: at pool initialization).  With no active
# cache the helpers below compute directly, so un-sweep callers see
# exactly the pre-cache behavior.

_active: ScheduleCache | None = None


def activate_cache(cache: ScheduleCache | None) -> ScheduleCache | None:
    """Install (or with ``None`` clear) the process-wide cache; returns
    the previous one so callers can restore it."""
    global _active
    previous = _active
    _active = cache
    return previous


def get_active_cache() -> ScheduleCache | None:
    return _active


# -- cached artifacts --------------------------------------------------
#
# Keys and value computations are separate functions so every consumer
# -- the cached_* helpers below, and the schedule-planning service's
# single-flight planner (repro.service.planner) -- addresses the same
# entry for the same inputs.  A sweep warms the service's cache and
# vice versa.


def _dest_key(destinations: Iterable[int]) -> list[int]:
    return sorted(int(d) for d in destinations)


def schedule_table_key(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> str:
    """The content address of one schedule table (see :func:`cache_key`)."""
    return cache_key(
        "schedule",
        algorithm=algorithm,
        n=n,
        source=source,
        dests=_dest_key(destinations),
        ports=[ports.ports, ports.name],
        order=order.name,
    )


def compute_schedule_table(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> dict:
    """Build the schedule table value (cache-oblivious, JSON-safe)."""
    from repro.multicast.registry import get_algorithm

    dests = _dest_key(destinations)
    sched = get_algorithm(algorithm).schedule(n, source, dests, ports, order)
    return {
        "max_step": sched.max_step,
        "dest_steps": {str(dst): step for dst, step in sorted(sched.dest_steps.items())},
    }


def cached_schedule_table(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> dict:
    """Step table for one multicast: ``{"max_step", "dest_steps"}``.

    ``dest_steps`` maps destination address (as a string, for JSON) to
    the step in which it receives the message.  Computed via the
    registry algorithm on a miss; served from the active cache on a
    hit.
    """
    key = schedule_table_key(algorithm, n, source, destinations, ports, order)
    cache = get_active_cache()
    if cache is not None:
        value = cache.get(key)
        if value is not None:
            return value  # type: ignore[return-value]
    value = compute_schedule_table(algorithm, n, source, destinations, ports, order)
    if cache is not None:
        cache.put(key, value)
    return value


def delay_stats_key(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    size: int,
    timings: Timings,
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> str:
    """The content address of one delay summary (see :func:`cache_key`)."""
    return cache_key(
        "delay",
        algorithm=algorithm,
        n=n,
        source=source,
        dests=_dest_key(destinations),
        size=size,
        timings={
            "t_setup": timings.t_setup,
            "t_recv": timings.t_recv,
            "t_byte": timings.t_byte,
            "t_hop": timings.t_hop,
        },
        ports=[ports.ports, ports.name],
        order=order.name,
    )


def compute_delay_stats(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    size: int,
    timings: Timings,
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> dict:
    """Run the wormhole simulation and summarize (cache-oblivious)."""
    from repro.multicast.registry import get_algorithm
    from repro.simulator.run import simulate_multicast

    dests = _dest_key(destinations)
    tree = get_algorithm(algorithm).build_tree(n, source, dests, order)
    res = simulate_multicast(tree, size=size, timings=timings, ports=ports, label=algorithm)
    return {
        "avg_delay_us": res.avg_delay,
        "max_delay_us": res.max_delay,
        "total_blocked_us": res.total_blocked_time,
    }


def cached_delay_stats(
    algorithm: str,
    n: int,
    source: int,
    destinations: Iterable[int],
    size: int,
    timings: Timings,
    ports: PortModel,
    order: ResolutionOrder = ResolutionOrder.DESCENDING,
) -> dict:
    """Simulated delay summary for one multicast:
    ``{"avg_delay_us", "max_delay_us", "total_blocked_us"}``.

    The full wormhole simulation runs on a miss; the summary triple is
    what every delay experiment consumes, so that is what is cached.
    """
    key = delay_stats_key(algorithm, n, source, destinations, size, timings, ports, order)
    cache = get_active_cache()
    if cache is not None:
        value = cache.get(key)
        if value is not None:
            return value  # type: ignore[return-value]
    value = compute_delay_stats(algorithm, n, source, destinations, size, timings, ports, order)
    if cache is not None:
        cache.put(key, value)
    return value
