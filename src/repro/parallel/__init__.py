"""Parallel sweep engine: process-pool fan-out with schedule caching.

The paper's evaluation grid -- (cube size, message length, algorithm,
trial seed) -- is embarrassingly parallel; this package executes it
that way while guaranteeing bit-identical results to the serial path:

- :mod:`repro.parallel.engine` -- :func:`sweep_context` /
  :func:`run_points`: chunked process-pool dispatch with in-process
  fallback on worker failure, plus per-worker telemetry and metrics
  merging (``sim.parallel.*``);
- :mod:`repro.parallel.cache` -- a content-addressed two-layer cache
  for multicast schedules, step tables, and simulated delay summaries,
  shared across workers through an optional ``cache_dir``;
- :mod:`repro.parallel.seeds` -- order-independent per-point seed
  derivation.

See docs/PERFORMANCE.md for the execution model, the seed-derivation
scheme, and the cache layout.
"""

from repro.parallel.cache import (
    ScheduleCache,
    cache_key,
    cached_delay_stats,
    cached_schedule_table,
    get_active_cache,
)
from repro.parallel.engine import (
    SweepConfig,
    default_jobs,
    get_sweep_metrics,
    run_points,
    sweep_context,
)
from repro.parallel.seeds import derive_seed, spawn_seeds

__all__ = [
    "ScheduleCache",
    "SweepConfig",
    "cache_key",
    "cached_delay_stats",
    "cached_schedule_table",
    "default_jobs",
    "derive_seed",
    "get_active_cache",
    "get_sweep_metrics",
    "run_points",
    "spawn_seeds",
    "sweep_context",
]
