"""Parallel sweep engine: process-pool fan-out with schedule caching.

The paper's evaluation grid -- (cube size, message length, algorithm,
trial seed) -- is embarrassingly parallel; this package executes it
that way while guaranteeing bit-identical results to the serial path:

- :mod:`repro.parallel.engine` -- :func:`sweep_context` /
  :func:`run_points`: chunked dispatch over a worker fabric with
  in-process fallback on worker failure, plus per-worker telemetry and
  metrics merging (``sim.parallel.*``);
- :mod:`repro.parallel.fabric` -- the :class:`Communicator` transports
  behind the engine: the single-host process pool
  (:class:`LocalCommunicator`) and the multi-host TCP coordinator
  (:class:`TcpCoordinator`) with per-host heartbeats, dead-host
  requeue, and degradation back to the local pool (``sim.fabric.*``);
- :mod:`repro.parallel.worker` -- the ``repro-hypercube worker``
  process that serves a coordinator link on any host;
- :mod:`repro.parallel.fabric_cache` -- the fleet-shared schedule-cache
  tier workers mount over the planning service's ``/v1/cache`` routes;
- :mod:`repro.parallel.cache` -- a content-addressed two-layer cache
  for multicast schedules, step tables, and simulated delay summaries,
  shared across workers through an optional ``cache_dir``, with
  checksum-validated disk reads and quarantine of damaged entries;
- :mod:`repro.parallel.journal` -- crash-safe sweep checkpointing
  (fsync'd JSONL with per-record checksums) behind ``--resume``;
- :mod:`repro.parallel.resilience` -- worker watchdogs, retry budgets,
  and poison-point quarantine for the engine;
- :mod:`repro.parallel.seeds` -- order-independent per-point seed
  derivation.

See docs/PERFORMANCE.md for the execution model, the seed-derivation
scheme, and the cache layout, and docs/RESILIENCE.md for the journal
format, resume semantics, and watchdog tuning.
"""

from repro.parallel.cache import (
    CacheAudit,
    ScheduleCache,
    cache_key,
    cached_delay_stats,
    cached_schedule_table,
    gc_cache_dir,
    get_active_cache,
    verify_cache_dir,
)
from repro.parallel.engine import (
    SweepConfig,
    default_jobs,
    get_sweep_journal,
    get_sweep_metrics,
    run_points,
    sweep_context,
)
from repro.parallel.fabric import (
    Communicator,
    FabricConfig,
    LocalCommunicator,
    TcpCoordinator,
    emit_fabric_event,
)
from repro.parallel.fabric_cache import RemoteCacheClient, TieredCache
from repro.parallel.journal import (
    JournalLoad,
    SweepJournal,
    derive_run_id,
    load_journal,
    point_fingerprint,
)
from repro.parallel.resilience import PointTracker, RetryPolicy, WatchdogConfig
from repro.parallel.seeds import derive_seed, spawn_seeds

__all__ = [
    "CacheAudit",
    "Communicator",
    "FabricConfig",
    "JournalLoad",
    "LocalCommunicator",
    "PointTracker",
    "RemoteCacheClient",
    "RetryPolicy",
    "ScheduleCache",
    "SweepConfig",
    "SweepJournal",
    "TcpCoordinator",
    "TieredCache",
    "WatchdogConfig",
    "cache_key",
    "emit_fabric_event",
    "cached_delay_stats",
    "cached_schedule_table",
    "default_jobs",
    "derive_run_id",
    "derive_seed",
    "gc_cache_dir",
    "get_active_cache",
    "get_sweep_journal",
    "get_sweep_metrics",
    "load_journal",
    "point_fingerprint",
    "run_points",
    "spawn_seeds",
    "sweep_context",
    "verify_cache_dir",
]
