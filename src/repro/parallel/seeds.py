"""Deterministic per-point seed derivation for parallel sweeps.

A sweep fans hundreds of (experiment, x-value, trial) points across
worker processes whose scheduling order is nondeterministic, so a
point's random stream must be a pure function of *what* the point is,
never of *when* or *where* it runs.  The serial experiment harness
already follows one such scheme (``base_seed + point_index``, kept
verbatim for bit-identity with archived tables); :func:`derive_seed`
is the general scheme for new sweep definitions, hashing a structured
key so that neighbouring points never share overlapping streams the
way small additive offsets can.

The derivation is SHA-256 over a canonical encoding of the components,
truncated to 63 bits -- stable across processes, platforms, and Python
versions (no dependence on ``hash()`` randomization).
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed", "spawn_seeds"]

#: Seeds fit a non-negative 63-bit range so every consumer
#: (``random.Random``, ``numpy.random.default_rng``) accepts them.
_SEED_BITS = 63


def _encode(component: object) -> str:
    """Canonical text for one key component (order- and type-stable)."""
    if isinstance(component, bool):  # before int: True is an int
        return f"b:{component}"
    if isinstance(component, int):
        return f"i:{component}"
    if isinstance(component, float):
        return f"f:{component!r}"
    if isinstance(component, str):
        return f"s:{component}"
    if isinstance(component, (tuple, list)):
        return "t:(" + ",".join(_encode(c) for c in component) + ")"
    if component is None:
        return "n:"
    raise TypeError(
        f"cannot derive a seed from component {component!r} of type "
        f"{type(component).__name__}: seed components must be int, float, "
        f"str, bool, None, or (nested) tuples/lists thereof"
    )


def derive_seed(base: int, *components: object) -> int:
    """Derive a child seed from ``base`` and a structured key.

    Deterministic in ``(base, components)`` and independent of call
    order, process identity, and platform.  Components may be ints,
    floats, strings, bools, ``None``, or (nested) tuples/lists thereof.

    Example::

        seed = derive_seed(1993, "fig11", "wsort", m, trial)
    """
    text = _encode(int(base)) + "|" + "|".join(_encode(c) for c in components)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


def spawn_seeds(base: int, label: str, count: int) -> list[int]:
    """``count`` independent child seeds for one labelled sub-sweep."""
    if count < 0:
        raise ValueError(f"cannot spawn {count} seeds")
    return [derive_seed(base, label, i) for i in range(count)]
