"""Resilient sweeps: journaled resume and a self-healing cache.

Simulates the failures a long paper-parity sweep actually meets -- a
run killed halfway through, a torn journal tail, a corrupted cache
entry on disk -- and shows that every recovery path yields tables
byte-identical to an undisturbed run.  See docs/RESILIENCE.md.

Run:  PYTHONPATH=src python examples/resilient_sweep.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.analysis.experiments import run_sweep, sweep_run_id
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    WatchdogConfig,
    gc_cache_dir,
    load_journal,
    verify_cache_dir,
)


def main() -> None:
    ids = ["fig11"]
    reference = run_sweep(ids, fast=True)["fig11"]
    print("reference:   fig11 fast sweep, undisturbed, no journal")

    with tempfile.TemporaryDirectory(prefix="repro-resilient-") as root:
        journal_dir = os.path.join(root, "journal")
        cache_dir = os.path.join(root, "cache")

        # A journaled run checkpoints every completed point durably.
        run_sweep(ids, fast=True, journal_dir=journal_dir, cache_dir=cache_dir)
        run_id = sweep_run_id(ids, fast=True)
        journal_path = os.path.join(journal_dir, f"{run_id}.jsonl")
        checkpoints = len(load_journal(journal_path).results)
        print(f"journaled:   run {run_id}, {checkpoints} points checkpointed")

        # Simulate a crash: keep the header and the first 4 checkpoints,
        # as if the process had been SIGKILLed mid-sweep, and leave the
        # next record torn in half, as if it had been mid-write.
        with open(journal_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        torn = lines[5][: len(lines[5]) // 2]
        with open(journal_path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:5] + [torn])

        registry = MetricsRegistry()
        resumed = run_sweep(
            ids, fast=True, journal_dir=journal_dir, cache_dir=cache_dir,
            resume=True, metrics=registry,
        )["fig11"]
        hits = registry.snapshot()["sim.resilience.journal_hits"]["value"]
        assert resumed.to_json() == reference.to_json()
        print(
            f"resumed:     {hits:g} points served from the journal, the torn "
            "record recomputed -- table identical  OK"
        )

        # Corrupt one cache entry on disk; the next read quarantines it
        # and recomputes rather than trusting it or crashing.
        victim = next(
            p for p in sorted(Path(cache_dir).rglob("*.json"))
            if "_quarantine" not in p.parts
        )
        victim.write_text("{torn and unparseable", encoding="utf-8")
        registry = MetricsRegistry()
        healed = run_sweep(
            ids, fast=True, cache_dir=cache_dir, metrics=registry
        )["fig11"]
        bad = registry.snapshot()["sim.resilience.cache_quarantined"]["value"]
        assert healed.to_json() == reference.to_json()
        audit = verify_cache_dir(cache_dir)
        removed = gc_cache_dir(cache_dir)
        print(
            f"cache chaos: {bad:g} damaged entry quarantined and recomputed "
            f"-- table identical  OK (audit clean: {audit.clean}, "
            f"gc dropped {removed['quarantined']} quarantined file(s))"
        )

    wd = WatchdogConfig()
    print(
        f"watchdog:    opt-in via run_sweep(..., watchdog=WatchdogConfig()) "
        f"or `sweep --watchdog`: soft {wd.soft_timeout_s:g} s / hard "
        f"{wd.hard_timeout_s:g} s heartbeat timeouts, {wd.retry.max_retries} "
        "requeue rounds under capped exponential backoff"
    )


if __name__ == "__main__":
    main()
