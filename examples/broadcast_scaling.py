"""Scaling study: multicast delay as the machine grows.

The paper's motivation is data redistribution on scalable parallel
computers: an operation that is cheap on 32 nodes must stay cheap on
1024.  This example sweeps cube dimensions 4..10, multicasting a 4 KB
message to a random half of the machine with each algorithm, and prints
how the average delay grows -- logarithmically for the contention-aware
algorithms, with U-cube paying an extra step-count and blocking penalty
throughout.

Run:  python examples/broadcast_scaling.py
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.workloads import random_destination_sets
from repro.multicast import ALL_PORT
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm
from repro.simulator import NCUBE2, simulate_multicast

SETS_PER_POINT = 10
MESSAGE_BYTES = 4096


def main() -> None:
    algs = {name: get_algorithm(name) for name in PAPER_ALGORITHMS}
    header = "  n  nodes" + "".join(f"{name:>10}" for name in algs)
    print(f"average delay (us), 4 KB multicast to a random half of the machine")
    print(header)
    print("-" * len(header))
    for n in range(4, 11):
        m = (1 << n) // 2
        sets = random_destination_sets(n, m, SETS_PER_POINT, seed=100 + n)
        row = f"{n:>3}  {1 << n:>5}"
        for name, alg in algs.items():
            delays = [
                simulate_multicast(
                    alg.build_tree(n, 0, dests), MESSAGE_BYTES, NCUBE2, ALL_PORT
                ).avg_delay
                for dests in sets
            ]
            row += f"{mean(delays):>10.0f}"
        print(row)
    print()
    print("Wormhole routing keeps per-unicast latency distance-insensitive, so")
    print("delay growth is driven by the multicast *step* structure; the")
    print("contention-aware algorithms grow a full step more slowly.")


if __name__ == "__main__":
    main()
