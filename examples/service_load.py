"""Multicast planning as a service: boot, load, observe.

Starts the schedule-planning HTTP service in-process (on an ephemeral
loopback port), drives a Zipf-skewed workload at it with the bundled
load generator, and then reads back what both sides saw: client-side
throughput and latency quantiles, the server's coalescing/admission
counters, and per-client usage accounting from ``/v1/usage``.

The same service runs standalone via ``python -m repro serve``; drive
it with ``python -m repro.service.loadgen --port ...``.  See
docs/SERVICE.md for the API and capacity-planning notes.

Run:  PYTHONPATH=src python examples/service_load.py
"""

from __future__ import annotations

import json
import urllib.request

from repro.service import LoadConfig, ServiceConfig, ServiceThread, run_load_sync


def main() -> None:
    # -- 1. the service, hosted on a background event-loop thread --------
    with ServiceThread(ServiceConfig(port=0)) as svc:
        base = f"http://{svc.host}:{svc.port}"
        print(f"service up at {base}")

        # -- 2. one explicit request/response round trip -----------------
        doc = {"algorithm": "wsort", "n": 6, "source": 0,
               "destinations": [1, 3, 5, 9, 17, 33]}
        req = urllib.request.Request(
            base + "/v1/schedule", data=json.dumps(doc).encode(), method="POST",
            headers={"X-Client-Id": "example"},
        )
        with urllib.request.urlopen(req) as resp:
            body = json.loads(resp.read())
        print(f"one schedule: source={body['source']}, "
              f"max step {body['result']['max_step']}, key {body['key'][:12]}...")

        # -- 3. a skewed load run: hot keys coalesce and then hit --------
        summary = run_load_sync(
            LoadConfig(
                host=svc.host, port=svc.port,
                requests=600, concurrency=8,
                keys=12, skew=1.1, n=6, m=8,
                client_id="example-load",
            )
        )
        print("\n== load generator (600 requests, 12 keys, zipf 1.1) ==")
        print(f"throughput: {summary.rps:.0f} req/s over {summary.wall_seconds:.2f} s")
        print(f"latency:    p50 {summary.p50_ms:.2f} ms, p99 {summary.p99_ms:.2f} ms")
        print(f"cache:      hit ratio {summary.hit_ratio:.3f} "
              f"({summary.cache_hits} hits, {summary.builds} builds)")

        # -- 4. what the server itself measured --------------------------
        registry = svc.app.metrics
        print("\n== server counters ==")
        for name in ("requests", "builds", "coalesced", "rejected_rate"):
            value = registry.counter(f"sim.service.{name}").value
            print(f"sim.service.{name:<14} {value:g}")
        print(f"repository hit ratio: {svc.app.planner.cache.hit_ratio():.3f}")

        with urllib.request.urlopen(base + "/v1/usage") as resp:
            usage = json.loads(resp.read())
        print("\n== per-client usage (/v1/usage) ==")
        for client, stats in usage["clients"].items():
            print(f"{client:<14} requests={stats['requests']:<5} "
                  f"cache_hits={stats['cache_hits']:<5} builds={stats['builds']}")
    print("\nservice drained cleanly")


if __name__ == "__main__":
    main()
