"""U-mesh: the paper's one-port story on the Intel-Paragon topology.

The paper's Section 1 lists the 2D mesh (Intel Paragon) alongside the
hypercube; the U-cube baseline comes from the same work [9] that
introduced U-mesh for meshes.  This example multicasts from the center
of an 8x8 mesh to growing random destination sets and shows:

- U-mesh hits the one-port optimum ceil(log2(m+1)) steps, exactly like
  U-cube on the hypercube;
- its schedule is contention-free (verified by the Definition 4
  checker instantiated with XY channel sets) and shows zero channel
  blocking in the wormhole simulator;
- the same 64 nodes arranged as a 6-cube still deliver lower delays --
  the diameter and bisection advantages the hypercube pays for in
  wiring.

Run:  python examples/mesh_multicast.py
"""

from __future__ import annotations

import math
import random

from repro.mesh import Mesh2D, UMesh, simulate_mesh_multicast
from repro.multicast import ONE_PORT, UCube
from repro.simulator import NCUBE2, simulate_multicast

MESH = Mesh2D(8, 8)
SOURCE = MESH.node(3, 3)


def main() -> None:
    rnd = random.Random(1993)
    print("U-mesh multicast from the center of an 8x8 wormhole mesh (one-port)\n")
    print(f"{'m':>4}{'steps':>7}{'optimal':>9}{'contention':>12}{'mesh delay':>12}{'6-cube delay':>14}")
    print("-" * 58)
    for m in (3, 7, 15, 31, 63):
        dests = rnd.sample([u for u in range(64) if u != SOURCE], m)
        tree = UMesh().build_tree(MESH, SOURCE, dests)
        sched = tree.schedule(ONE_PORT)
        ok = "free" if sched.check_contention().ok else "VIOLATED"
        res = simulate_mesh_multicast(tree, 4096, NCUBE2, ONE_PORT)
        cube_tree = UCube().build_tree(6, SOURCE, dests)
        cube = simulate_multicast(cube_tree, 4096, NCUBE2, ONE_PORT)
        print(
            f"{m:>4}{sched.max_step:>7}{math.ceil(math.log2(m + 1)):>9}"
            f"{ok:>12}{res.max_delay:>12.0f}{cube.max_delay:>14.0f}"
        )
    print()
    print("Same step counts, same contention-freedom: the [9] construction")
    print("carries over to meshes.  Delays track each other closely because")
    print("wormhole latency is nearly distance-insensitive -- the mesh's")
    print("longer paths cost little until the network is loaded.")


if __name__ == "__main__":
    main()
