"""Parallel figure sweeps with schedule caching.

Runs the Figure 11/12 fast sweep three ways -- serial, parallel
(process pool), and parallel against a warm content-addressed cache --
and shows that all three produce byte-identical tables while the
cached run does almost no simulation.  See docs/PERFORMANCE.md.

Run:  PYTHONPATH=src python examples/parallel_sweep.py
"""

from __future__ import annotations

import tempfile
from time import perf_counter

from repro.analysis.experiments import run_experiment, run_sweep
from repro.obs.metrics import MetricsRegistry


def main() -> None:
    jobs = 2

    t0 = perf_counter()
    serial = run_experiment("fig11", fast=True)
    t_serial = perf_counter() - t0
    print(f"serial:        fig11 fast sweep in {t_serial:.2f} s")

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        t0 = perf_counter()
        cold = run_experiment("fig11", fast=True, jobs=jobs, cache_dir=cache_dir)
        t_cold = perf_counter() - t0
        print(f"parallel cold: jobs={jobs}, cache miss-heavy, {t_cold:.2f} s")

        registry = MetricsRegistry()
        t0 = perf_counter()
        tables = run_sweep(
            ["fig11", "fig12"], fast=True, jobs=jobs,
            cache_dir=cache_dir, metrics=registry,
        )
        t_warm = perf_counter() - t0
        warm = tables["fig11"]
        snap = registry.snapshot()
        hits = snap["sim.parallel.cache_hits"]["value"]
        misses = snap.get("sim.parallel.cache_misses", {}).get("value", 0)
        print(
            f"parallel warm: fig11 + fig12 in {t_warm:.2f} s "
            f"({hits:g} cache hits, {misses:g} misses -- fig12 rides fig11's points)"
        )

    assert cold.to_json() == serial.to_json()
    assert warm.to_json() == serial.to_json()
    print("bit-identity: serial == parallel cold == parallel warm  OK")
    print()
    print(serial.render())


if __name__ == "__main__":
    main()
