"""Extending the library: write, verify, and benchmark your own
multicast algorithm.

The verification machinery (structural checks + the Definition 4
contention verifier) works on *any* tree builder, so a new routing idea
can be checked against the theory in a few lines.  This example
implements a deliberately naive "greedy nearest-neighbor chain"
algorithm, shows that it is correct but *not* contention-aware, and
compares it with W-sort.

Run:  python examples/custom_algorithm.py
"""

from __future__ import annotations

from typing import Sequence

from repro import ALL_PORT, MulticastTree, WSort, verify_multicast
from repro.analysis.workloads import random_destination_sets
from repro.core.addressing import hamming
from repro.core.paths import ResolutionOrder
from repro.multicast.base import MulticastAlgorithm
from repro.simulator import NCUBE2, simulate_multicast


class GreedyChain(MulticastAlgorithm):
    """Visit destinations in nearest-neighbor order, daisy-chained.

    Every node forwards to the unvisited destination closest to it --
    locally sensible, globally oblivious to channels and ports.
    """

    name = "greedy-chain"

    def build_tree(
        self,
        n: int,
        source: int,
        destinations: Sequence[int],
        order: ResolutionOrder = ResolutionOrder.DESCENDING,
    ) -> MulticastTree:
        tree = MulticastTree(n, source, destinations, order)
        remaining = set(destinations)
        current = source
        while remaining:
            nxt = min(remaining, key=lambda d: (hamming(current, d), d))
            tree.add_send(current, nxt)
            remaining.remove(nxt)
            current = nxt
        return tree


def main() -> None:
    n, m = 6, 24
    dests = random_destination_sets(n, m, 1, seed=77)[0]

    for alg in (GreedyChain(), WSort()):
        result = verify_multicast(alg, n, 0, dests, ALL_PORT)
        tree = alg.build_tree(n, 0, dests)
        sched = tree.schedule(ALL_PORT)
        sim = simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)
        print(f"== {alg.name} ==")
        print(f"   structurally valid + contention-free: {bool(result)}")
        if not result:
            for err in result.errors[:3]:
                print(f"     - {err.splitlines()[0]}")
        print(f"   steps: {sched.max_step}   tree depth: {tree.depth()}")
        print(
            f"   simulated: avg {sim.avg_delay:.0f} us, max {sim.max_delay:.0f} us, "
            f"blocking {sim.total_blocked_time:.0f} us"
        )
        print()

    print("The chain reaches everyone (the structural checks pass) but its")
    print("depth -- and therefore its delay -- is linear in m, and nothing")
    print("guarantees its unicasts avoid each other's channels.  The")
    print("Definition 4 verifier and the simulator's blocking counter both")
    print("expose that immediately.")


if __name__ == "__main__":
    main()
