"""Domain scenario: communication time of an iterative solver.

Section 1 of the paper: "In parallel scientific computing, data must be
redistributed periodically in such a way that all processors can be
kept busy performing useful tasks."  This example models the
communication skeleton of a distributed iterative solver on a 64-node
(6-cube) machine, using the collective library:

1. the master scatters the initial row blocks (personalized data);
2. each iteration multicasts updated boundary rows to the neighbor
   *set* that consumes them (the paper's multicast primitive),
   all-reduces the residual norm, and synchronizes with a barrier;
3. the master gathers the solution.

It prints the per-phase communication time under U-cube-based and
W-sort-based multicast so the end-to-end impact of the paper's
contribution is visible in an application context.

Run:  python examples/data_redistribution.py
"""

from __future__ import annotations

from repro.analysis.workloads import random_destination_sets
from repro.collectives import HypercubeCollectives

N = 6  # 64 nodes
ROW_BLOCK = 8192  # bytes per node of matrix rows
BOUNDARY = 2048  # bytes of boundary rows multicast per iteration
ITERATIONS = 5
CONSUMERS = 20  # nodes consuming each iteration's boundary rows


def solver_comm_time(algorithm: str) -> dict[str, float]:
    comm = HypercubeCollectives(N, algorithm=algorithm)
    phases: dict[str, float] = {}

    phases["scatter rows"] = comm.scatter(root=0, block_size=ROW_BLOCK).completion_time

    multicast_time = 0.0
    reduce_time = 0.0
    barrier_time = 0.0
    for it in range(ITERATIONS):
        dests = random_destination_sets(N, CONSUMERS, 1, seed=500 + it)[0]
        multicast_time += comm.multicast(0, dests, BOUNDARY).completion_time
        reduce_time += comm.allreduce(size=8).completion_time  # one float residual
        barrier_time += comm.barrier().completion_time
    phases[f"{ITERATIONS}x boundary multicast"] = multicast_time
    phases[f"{ITERATIONS}x residual allreduce"] = reduce_time
    phases[f"{ITERATIONS}x barrier"] = barrier_time

    phases["gather solution"] = comm.gather(root=0, block_size=ROW_BLOCK).completion_time
    phases["TOTAL"] = sum(v for k, v in phases.items())
    return phases


def main() -> None:
    print(f"iterative-solver communication skeleton on a {1 << N}-node 6-cube\n")
    by_alg = {name: solver_comm_time(name) for name in ("ucube", "wsort")}
    keys = list(by_alg["ucube"])
    width = max(len(k) for k in keys) + 2
    print(f"{'phase':<{width}}{'ucube (us)':>14}{'wsort (us)':>14}{'saving':>9}")
    print("-" * (width + 37))
    for k in keys:
        u, w = by_alg["ucube"][k], by_alg["wsort"][k]
        saving = f"{(1 - w / u) * 100:.0f}%" if u else "-"
        print(f"{k:<{width}}{u:>14.0f}{w:>14.0f}{saving:>9}")
    print()
    print("Only the multicast phase depends on the algorithm -- scatter,")
    print("reduce, and barrier use fixed dimension-exchange schedules -- but")
    print("in redistribution-heavy codes that phase dominates.")


if __name__ == "__main__":
    main()
