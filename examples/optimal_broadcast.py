"""Optimal broadcast techniques: binomial tree vs pipelining vs nESBT.

Broadcast is the most common collective, and the all-port architecture
changes what "optimal" means.  This example broadcasts messages of
increasing size across a 64-node 6-cube with three schedules:

1. the plain spanning binomial tree (one port active per node);
2. the same tree *pipelined* (message segmented, overlapping hops);
3. Johnsson & Ho's nESBT [reference 5 of the paper]: the message is
   split across n = 6 edge-disjoint spanning binomial trees so every
   port of the source works simultaneously, contention-free.

Run:  python examples/optimal_broadcast.py
"""

from __future__ import annotations

from repro.collectives import (
    esbt_broadcast_graph,
    optimal_segments,
    pipelined_multicast_graph,
    sbt_broadcast_graph,
    simulate_comm,
)
from repro.multicast import UCube
from repro.simulator import NCUBE2

N = 6


def main() -> None:
    dests = [u for u in range(1 << N) if u != 0]
    tree = UCube().build_tree(N, 0, dests)  # == the binomial tree

    print(f"broadcast completion time (us) on a {1 << N}-node {N}-cube\n")
    print(f"{'bytes':>8}{'binomial':>12}{'pipelined':>12}{'(k)':>5}{'nESBT':>12}{'best speedup':>14}")
    print("-" * 63)
    for size in (256, 1024, 4096, 16384, 65536, 262144):
        sbt = simulate_comm(sbt_broadcast_graph(N, 0, size), NCUBE2).completion_time
        k = optimal_segments(size, N, NCUBE2)
        piped = simulate_comm(
            pipelined_multicast_graph(tree, size, k), NCUBE2
        ).completion_time
        esbt = simulate_comm(esbt_broadcast_graph(N, 0, size), NCUBE2).completion_time
        best = min(piped, esbt)
        print(
            f"{size:>8}{sbt:>12.0f}{piped:>12.0f}{k:>5}{esbt:>12.0f}"
            f"{sbt / best:>13.1f}x"
        )
    print()
    print("Small messages: startup dominates, the binomial tree is already")
    print("optimal.  Large messages: pipelining removes the depth factor and")
    print("nESBT additionally multiplies the source's bandwidth by n -- the")
    print("two classic payoffs of the all-port architecture this paper's")
    print("multicast algorithms generalize to arbitrary destination sets.")


if __name__ == "__main__":
    main()
