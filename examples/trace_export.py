"""End-to-end tour of span tracing and the profiling exporters.

Runs a traced fig11 sweep (the Figure 11 delay experiment in fast
mode), then shows the three things a trace gives you: the span
hierarchy with per-phase cost rollups, a Chrome trace-event file you
can drop into Perfetto (https://ui.perfetto.dev), and a Prometheus
text-format metrics snapshot.  Equivalent CLI:

    repro-hypercube trace fig11 -o trace.json --prometheus metrics.prom

Run:  PYTHONPATH=src python examples/trace_export.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.experiments import run_sweep
from repro.obs.exporters import to_prometheus, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace_spans import Tracer, phase_rollup, trace_capture


def main() -> None:
    # -- 1. capture: install a tracer for the duration of the sweep -----
    registry = MetricsRegistry()
    with trace_capture(Tracer(label="trace-export-demo")) as tracer:
        tables = run_sweep(["fig11"], fast=True, metrics=registry)

    table = tables["fig11"]
    print("== traced sweep ==")
    print(f"trace id:  {tracer.trace_id}")
    print(f"points:    {len(table.x_values)}")
    print(f"spans:     {len(tracer.spans)} recorded")

    # -- 2. phase rollup: where did the time go? ------------------------
    print("\n== span phases (count x total wall) ==")
    rollup = phase_rollup(tracer.spans)
    for name in sorted(rollup, key=lambda k: -rollup[k]["total_us"]):
        entry = rollup[name]
        print(f"{name:<18} {entry['count']:>5} span(s)  {entry['total_us'] / 1e3:9.1f} ms")

    # -- 3. Chrome trace-event export (Perfetto-loadable) ---------------
    out_dir = Path(tempfile.mkdtemp())
    trace_path = out_dir / "trace.json"
    events = write_chrome_trace(trace_path, tracer)
    print("\n== Chrome trace export ==")
    print(f"{events} event(s) written to {trace_path}")
    print("open https://ui.perfetto.dev and drop the file in to explore")

    # -- 4. Prometheus text exposition of the sweep's metrics -----------
    print("\n== Prometheus metrics (first lines) ==")
    text = to_prometheus(registry)
    for line in text.splitlines()[:6]:
        print(line)
    print(f"... {len(text.splitlines())} line(s) total")


if __name__ == "__main__":
    main()
