"""Stencil halo exchange on a Gray-code-embedded mesh.

Data-parallel languages (the paper's HPF motivation) lay computational
grids onto the machine.  This example embeds an 8x8 process mesh into a
6-cube with two-dimensional Gray codes -- making mesh neighbors
hypercube neighbors -- and runs one halo-exchange phase of a 5-point
stencil: every process sends its four boundary strips to its mesh
neighbors, all 256 messages concurrently, modeled as 64 concurrent
4-destination multicasts.

It then compares the same exchange on a *naive* (row-major) placement,
where mesh neighbors can be several hops apart and paths collide --
showing why embeddings and contention-aware communication matter
together.

Run:  python examples/stencil_exchange.py
"""

from __future__ import annotations

from repro.core.embedding import mesh_embedding
from repro.multicast import SeparateAddressing
from repro.simulator import NCUBE2
from repro.simulator.multirun import simulate_concurrent_multicasts

ROWS_DIM = COLS_DIM = 3  # 8 x 8 mesh on a 6-cube
HALO_BYTES = 2048


def neighbors(mesh: list[list[int]], r: int, c: int) -> list[int]:
    """Mesh-neighbor node addresses (non-periodic 5-point stencil)."""
    out = []
    if r > 0:
        out.append(mesh[r - 1][c])
    if r + 1 < len(mesh):
        out.append(mesh[r + 1][c])
    if c > 0:
        out.append(mesh[r][c - 1])
    if c + 1 < len(mesh[0]):
        out.append(mesh[r][c + 1])
    return out


def exchange_time(mesh: list[list[int]]) -> tuple[float, float]:
    """(makespan, total header blocking) of one halo-exchange phase."""
    alg = SeparateAddressing()  # four point-to-point halo messages each
    trees = []
    for r in range(len(mesh)):
        for c in range(len(mesh[0])):
            trees.append(alg.build_tree(ROWS_DIM + COLS_DIM, mesh[r][c], neighbors(mesh, r, c)))
    res = simulate_concurrent_multicasts(trees, HALO_BYTES, NCUBE2)
    return res.makespan, res.total_blocked_time


def main() -> None:
    n = ROWS_DIM + COLS_DIM
    gray_mesh = mesh_embedding(ROWS_DIM, COLS_DIM)
    naive_mesh = [
        [r * (1 << COLS_DIM) + c for c in range(1 << COLS_DIM)]
        for r in range(1 << ROWS_DIM)
    ]

    print(f"5-point stencil halo exchange, 8x8 process mesh on a {1 << n}-node {n}-cube")
    print(f"halo strips of {HALO_BYTES} bytes, all processes exchanging at once\n")
    for label, mesh in (("Gray-code embedding", gray_mesh), ("row-major placement", naive_mesh)):
        makespan, blocked = exchange_time(mesh)
        print(f"  {label:<22} makespan {makespan:8.0f} us   header blocking {blocked:8.0f} us")

    print()
    print("With the Gray-code embedding every halo message is a single hop and")
    print("each channel carries exactly one message -- zero blocking.  Row-major")
    print("placement makes vertical neighbors distant, paths overlap, and the")
    print("same exchange pays for it in blocking and makespan.")


if __name__ == "__main__":
    main()
