"""End-to-end tour of the observability layer (repro.obs).

Runs a handful of operations with (1) a shared metrics registry,
(2) a JSONL telemetry sink, and (3) event-kernel profiling probes, then
shows what each surface collected: aggregated metrics, parsed
RunRecords, probe summaries, and channel-level rollups.

Run:  PYTHONPATH=src python examples/telemetry_export.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import HypercubeCollectives, MetricsRegistry
from repro.multicast.registry import get_algorithm
from repro.obs import (
    capture,
    channel_rollup,
    default_probes,
    probe_summaries,
)
from repro.obs.sink import read_jsonl
from repro.simulator import NCUBE2, simulate_multicast
from repro.multicast.ports import ALL_PORT


def main() -> None:
    # -- 1. one registry aggregating across many operations -------------
    registry = MetricsRegistry()
    comm = HypercubeCollectives(n=6, algorithm="wsort", metrics=registry)

    path = Path(tempfile.mkdtemp()) / "runs.jsonl"
    with capture(str(path)):  # equivalently: REPRO_TELEMETRY=runs.jsonl
        comm.broadcast(root=0, size=4096)
        comm.scatter(root=0, block_size=1024)
        comm.multicast(source=0, destinations=[1, 5, 9, 63], size=4096)

    print("== aggregated metrics (one registry, three operations) ==")
    snap = registry.snapshot()
    print(f"runs:            {snap['sim.runs']['value']:.0f}")
    print(f"events:          {snap['sim.events']['value']:.0f}")
    print(f"worms:           {snap['sim.worms']['value']:.0f}")
    delays = snap["sim.delay_us"]
    print(
        f"delay histogram: {delays['count']} observations, "
        f"mean {delays['mean']:.0f} us, max {delays['max']:.0f} us"
    )

    # -- 2. telemetry: one RunRecord JSON line per operation -------------
    print("\n== telemetry records (parsed back from JSONL) ==")
    for rec in read_jsonl(str(path)):
        where = rec.extra.get("completion_us", rec.extra.get("max_delay_us", 0.0))
        print(
            f"{rec.kind:<10} {rec.algorithm or '-':<22} "
            f"n={rec.n}  events={rec.events}  finish={where:.0f} us"
        )

    # -- 3. profiling probes + channel rollup on a single replay ---------
    print("\n== profiled replay (probes + channel rollup) ==")
    tree = get_algorithm("wsort").build_tree(6, 0, [1, 3, 5, 9, 17, 33, 63])
    probes = default_probes()
    res = simulate_multicast(
        tree, size=4096, timings=NCUBE2, ports=ALL_PORT, trace=True, probes=probes
    )
    for name, summary in probe_summaries(probes).items():
        print(f"probe {name}: {summary if name != 'callback_time' else ''}")
        if name == "callback_time":
            for label, entry in summary["by_callback"].items():
                print(f"    {label:<35} {entry['fires']:>4} fires")
    rollup = channel_rollup(res.network, horizon=res.completion_time, top=3)
    print(f"channels used: {rollup['channels_used']}")
    hot = ", ".join(
        f"({h['node']:06b}, dim {h['dim']}) {h['busy_us']:.0f} us"
        for h in rollup["hotspot_arcs"]
    )
    print(f"hotspot arcs:  {hot}")
    print(f"per-dim busy:  {rollup['per_dimension_busy_us']}")
    blocked = rollup["per_dimension_blocked_us"]
    print(f"per-dim blocked: {blocked or 'none (contention-free)'}")


if __name__ == "__main__":
    main()
