"""Survey: every collective operation, timed across machine sizes.

One table, MPI-style: rows are cube dimensions (16 to 256 nodes),
columns are collectives, cells are simulated completion times on
nCUBE-2-like hardware.  Shows at a glance how each operation's
structure scales -- logarithmic rounds (broadcast, reduce, barrier),
bandwidth-bound halving/doubling (scatter, gather, allgather), and the
quadratic traffic of the complete exchange.

Run:  python examples/collective_survey.py
"""

from __future__ import annotations

from repro.collectives import HypercubeCollectives

BLOCK = 1024  # bytes per node for personalized operations
VECTOR = 4096  # bytes for broadcast/reduce


def main() -> None:
    ops = [
        ("broadcast", lambda c: c.broadcast(0, VECTOR).completion_time),
        ("scatter", lambda c: c.scatter(0, BLOCK).completion_time),
        ("gather", lambda c: c.gather(0, BLOCK).completion_time),
        ("allgather", lambda c: c.allgather(BLOCK).completion_time),
        ("reduce", lambda c: c.reduce(0, VECTOR).completion_time),
        ("allreduce", lambda c: c.allreduce(VECTOR).completion_time),
        ("alltoall", lambda c: c.alltoall(BLOCK).completion_time),
        ("barrier", lambda c: c.barrier().completion_time),
    ]
    print(f"collective completion times (us), {BLOCK}-byte blocks / {VECTOR}-byte vectors")
    header = "  n  nodes" + "".join(f"{name:>11}" for name, _ in ops)
    print(header)
    print("-" * len(header))
    for n in range(4, 9):
        comm = HypercubeCollectives(n, algorithm="wsort")
        row = f"{n:>3}  {1 << n:>5}"
        for _, fn in ops:
            row += f"{fn(comm):>11.0f}"
        print(row)
    print()
    print("broadcast/reduce/barrier grow with log N; scatter/gather/allgather")
    print("are bandwidth-bound (the root moves (N-1) blocks); alltoall moves")
    print("N(N-1) blocks and dominates everything as the machine grows.")


if __name__ == "__main__":
    main()
