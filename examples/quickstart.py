"""Quickstart: build, verify, and time a multicast in a 4-cube.

Runs the paper's running example (source 0000, eight destinations in a
4-cube) through all four algorithms, printing each tree, its step
schedule, its contention verdict, and its simulated delay on
nCUBE-2-like hardware.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ALL_PORT, Combine, Maxport, UCube, WSort
from repro.simulator import NCUBE2, simulate_multicast

# the multicast of Figures 2-3: node 0000 to eight destinations
N = 4
SOURCE = 0b0000
DESTS = [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]


def main() -> None:
    print(f"multicast from {SOURCE:04b} to {len(DESTS)} destinations in a {N}-cube\n")
    for alg in (UCube(), Maxport(), Combine(), WSort()):
        tree = alg.build_tree(N, SOURCE, DESTS)
        sched = tree.schedule(ALL_PORT)
        report = sched.check_contention()
        result = simulate_multicast(tree, size=4096, timings=NCUBE2, ports=ALL_PORT)

        print(f"== {alg.name} ==")
        for send in tree.sends:
            print(f"   step {sched.step_of(send)}: {send.src:04b} -> {send.dst:04b}")
        print(f"   steps: {sched.max_step}   contention: {report.summary()}")
        print(
            f"   simulated 4 KB delay: avg {result.avg_delay:.0f} us, "
            f"max {result.max_delay:.0f} us, "
            f"header blocking {result.total_blocked_time:.0f} us"
        )
        print()

    print("The all-port-aware W-sort finishes in 2 steps where U-cube needs 4")
    print("(Figure 3 of the paper), with zero channel blocking.")


if __name__ == "__main__":
    main()
