"""Why dimension-ordered routing: deadlock, demonstrated and detected.

Wormhole routing's blocked worms hold their channels, so routing
functions with cyclic channel dependencies can deadlock the network --
the reason E-cube (and mesh XY) routing restricts paths to a fixed
dimension order.  This example:

1. proves E-cube safe by building its channel-dependency graph
   (Dally & Seitz) and checking acyclicity;
2. exhibits a dependency cycle for random minimal (unordered) routing;
3. actually *runs* four worms into a circular wait under a cyclic
   route set, and shows the library detecting the live deadlock.

Run:  python examples/deadlock_demo.py
"""

from __future__ import annotations

from repro.simulator import Simulator, Timings, WormholeNetwork
from repro.simulator.deadlock import (
    find_dependency_cycle,
    is_deadlock_free,
    waiting_cycle,
)
from repro.simulator.routing import ecube_routing, random_minimal_routing


def main() -> None:
    n = 4
    print(f"-- static analysis ({n}-cube, all source/destination pairs) --")
    print(f"E-cube routing deadlock-free: {is_deadlock_free(n, ecube_routing())}")
    cycle = find_dependency_cycle(n, random_minimal_routing(seed=0))
    print(f"random minimal routing dependency cycle: {cycle}")

    print("\n-- live deadlock under a cyclic route set (2-cube ring) --")
    ring = [0b00, 0b01, 0b11, 0b10]
    routes = {}
    for i in range(4):
        a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
        routes[(a, c)] = [
            (a, (a ^ b).bit_length() - 1),
            (b, (b ^ c).bit_length() - 1),
        ]
    sim = Simulator()
    net = WormholeNetwork(
        sim,
        2,
        timings=Timings(t_setup=0, t_recv=0, t_byte=1000.0, t_hop=1.0),
        route=lambda u, v: list(routes[(u, v)]),
    )
    for i in range(4):
        net.inject(net.make_worm(ring[i], ring[(i + 2) % 4], size=10))
    sim.run()
    undelivered = [w.uid for w in net.worms if w.t_delivered < 0]
    print(f"worms injected: 4, undelivered after the event queue drained: {undelivered}")
    print(f"circular wait among worms: {waiting_cycle(net)}")
    print()
    print("Every multicast algorithm in this library rides on E-cube routes,")
    print("so none of this can happen to them -- and the test suite keeps the")
    print("static check wired to the routing function to make sure.")


if __name__ == "__main__":
    main()
