"""Multicast on a broken hypercube: abort, retry, repair.

The paper's contention theory (and all four multicast algorithms)
assume a fault-free cube.  ``repro.faults`` models what happens when
links die:

1. inject a deterministic fault scenario (2 dead links in a 6-cube);
2. run W-sort *obliviously* -- worms abort on dead channels, sources
   retry over detours with capped backoff;
3. run the same multicast *fault-aware* -- the schedule is repaired
   before injection, so nothing ever aborts;
4. plug the fault-aware wrapper into the algorithm registry;
5. kill a node and watch the unreachable destination get reported;
6. sanity-check that with zero faults the degraded simulator is
   bit-identical to the plain one.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

from repro.faults import (
    DegradedHypercube,
    FaultAware,
    FaultScenario,
    LinkFault,
    NodeFault,
    repair_multicast,
    simulate_degraded_multicast,
    verify_degraded,
)
from repro.multicast import ALGORITHMS, get_algorithm, register
from repro.simulator.run import simulate_multicast


def main() -> None:
    n, source = 6, 0
    dests = [5, 13, 21, 31, 38, 42, 57, 63]
    scenario = FaultScenario(n, links=(LinkFault(0, 5), LinkFault(0, 4)))
    degraded = DegradedHypercube(n, scenario)
    print(f"-- scenario: {scenario.describe()} --")
    print(f"dead arcs: {sorted(degraded.dead_arcs)}")

    print("\n-- oblivious W-sort: abort on dead channel, retry over a detour --")
    tree = get_algorithm("wsort").build_tree(n, source, dests)
    res = simulate_degraded_multicast(tree, scenario)
    print(
        f"delivered {len(res.delivered)}/{len(dests)}  "
        f"delivery ratio {res.delivery_ratio:.3f}  avg {res.avg_delay:.0f} us"
    )
    print(
        f"aborted worms: {res.aborted_worms}   retries: {res.retries}   "
        f"gave up: {res.gave_up}"
    )
    print(f"stall verdict at end of run: {res.deadlock['verdict']}")

    print("\n-- fault-aware W-sort: repair the schedule before injection --")
    report = repair_multicast("wsort", degraded, n, source, dests)
    for r in report.repairs:
        print(f"repair: {r.src} -> {r.dst} via relays {list(r.via) or '(re-route)'}")
    check = verify_degraded(report)
    print(f"verification ok: {check.ok}   contention-free: {check.contention_free}")
    r_res = simulate_degraded_multicast(
        report.tree, scenario, unreachable_hint=report.unreachable
    )
    print(
        f"delivered {len(r_res.delivered)}/{len(dests)}  "
        f"delivery ratio {r_res.delivery_ratio:.3f}  avg {r_res.avg_delay:.0f} us  "
        f"aborted worms: {r_res.aborted_worms}"
    )

    print("\n-- the wrapper is a registry citizen --")
    if "fault-wsort" not in ALGORITHMS:
        register("fault-wsort", lambda: FaultAware("wsort", degraded))
    wrapped = get_algorithm("fault-wsort")
    wrapped.build_tree(n, source, dests)
    print(
        f"registered {wrapped.name!r}; last repair touched "
        f"{len(wrapped.last_report.repairs)} send(s)"
    )
    ALGORITHMS.pop("fault-wsort", None)  # leave the global registry as found

    print("\n-- a dead router makes a destination unreachable --")
    cut = FaultScenario(n, nodes=(NodeFault(42),))
    cut_report = repair_multicast("wsort", DegradedHypercube(n, cut), n, source, dests)
    cut_res = simulate_degraded_multicast(
        cut_report.tree, cut, unreachable_hint=cut_report.unreachable
    )
    print(
        f"unreachable: {list(cut_res.unreachable)}   "
        f"delivery ratio {cut_res.delivery_ratio:.3f} "
        f"({len(cut_res.delivered)}/{len(dests)} delivered)"
    )

    print("\n-- zero faults: the degraded simulator changes nothing --")
    plain = simulate_multicast(tree)
    empty = simulate_degraded_multicast(tree, None)
    identical = plain.delays == empty.delays and plain.events == empty.events
    print(
        f"delays and event counts bit-identical to simulate_multicast: {identical}"
    )


if __name__ == "__main__":
    main()
