"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they isolate the contribution of
individual design decisions (port model, weighted_sort, message size
regime, resolution order).
"""

from __future__ import annotations

from repro.analysis import run_experiment

from .conftest import paper_parity


def test_ablation_port_model(benchmark, save_table):
    """All-port <= 2-port <= one-port for the same W-sort trees."""
    table = benchmark.pedantic(
        run_experiment, args=("ablation-ports",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("ablation_ports", table, precision=0)
    for one, two, allp in zip(
        table.column("one-port"), table.column("2-port"), table.column("all-port")
    ):
        assert allp <= two + 1e-6 <= one + 1e-6


def test_ablation_wsort(benchmark, save_table):
    """weighted_sort never hurts Maxport's step count and helps in the
    mid-range."""
    table = benchmark.pedantic(
        run_experiment, args=("ablation-wsort",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("ablation_wsort", table)
    gains = [
        m - w for m, w in zip(table.column("maxport"), table.column("wsort"))
    ]
    assert all(g >= -1e-9 for g in gains)
    assert max(gains) > 0


def test_ablation_message_size(benchmark, save_table):
    """Startup-dominated vs bandwidth-dominated: all algorithms converge
    for tiny messages (startup dominates equally) and diverge as the
    per-byte term grows."""
    table = benchmark.pedantic(
        run_experiment, args=("ablation-msgsize",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("ablation_msgsize", table, precision=0)
    xs = table.x_values
    # relative spread between best and worst algorithm per size
    def spread(i: int) -> float:
        vals = [table.column(name)[i] for name in table.columns]
        return (max(vals) - min(vals)) / min(vals)

    assert spread(xs.index(16384)) > 0.0
    # delays increase with size for every algorithm
    for name in table.columns:
        col = table.column(name)
        assert all(b >= a for a, b in zip(col, col[1:]))


def test_ablation_timing_sensitivity(benchmark, save_table):
    """The W-sort-over-U-cube improvement survives scaling the timing
    constants by 16x in either direction -- the quantitative backing for
    substituting the nCUBE-2 constants (DESIGN.md S4)."""
    table = benchmark.pedantic(
        run_experiment,
        args=("ablation-sensitivity",),
        kwargs={"fast": not paper_parity()},
        rounds=1,
    )
    save_table("ablation_sensitivity", table, precision=1)
    for name in table.columns:
        assert all(v > 0 for v in table.column(name)), "improvement must persist"
    # improvement shrinks as software overhead dominates (the advantage
    # is in channel usage, not in the number of sends)
    slowest = table.column("tbyte_x0.25")
    assert slowest[0] > slowest[-1]


def test_ablation_resolution_order(benchmark, save_table):
    """Aggregate step counts are insensitive to the E-cube resolution
    order (the paper's claim that the nCUBE-2's opposite order does not
    affect the results)."""
    table = benchmark.pedantic(
        run_experiment,
        args=("ablation-resolution",),
        kwargs={"fast": not paper_parity()},
        rounds=1,
    )
    save_table("ablation_resolution", table)
    for d, a in zip(table.column("desc"), table.column("asc")):
        assert abs(d - a) <= 0.5
