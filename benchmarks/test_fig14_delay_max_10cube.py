"""Figure 14: maximum delay on a simulated 10-cube."""

from __future__ import annotations

from repro.analysis import run_experiment
from repro.analysis.shapes import check_figure

from .conftest import paper_parity


def test_fig14_delay_max_10cube(benchmark, save_table):
    table = benchmark.pedantic(
        run_experiment, args=("fig14",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("fig14", table, precision=0)

    for c in check_figure("fig14", table):
        assert c.passed, f"{c.claim}: {c.detail}"

    # delays grow with m up to the broadcast point
    ucube = table.column("ucube")
    assert ucube[-1] > ucube[0]
