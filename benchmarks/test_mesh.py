"""Bench: U-mesh on a 2D mesh (extension; the [9] substrate's mesh half).

Regenerates a Figures-9-style stepwise table for an 8x8 mesh and checks
the U-mesh guarantees: the one-port staircase and contention-freedom.
"""

from __future__ import annotations

import math
from statistics import mean

import numpy as np

from repro.analysis.tables import Table
from repro.mesh import Mesh2D, UMesh
from repro.multicast.ports import ONE_PORT

from .conftest import paper_parity


def run_mesh_stepwise(sets_per_point: int) -> Table:
    mesh = Mesh2D(8, 8)
    alg = UMesh()
    m_values = [1, 2, 4, 8, 16, 24, 32, 48, 63]
    steps_col: list[float] = []
    optimal_col: list[float] = []
    for i, m in enumerate(m_values):
        rng = np.random.default_rng(8800 + i)
        vals = []
        for _ in range(sets_per_point):
            source = int(rng.integers(0, 64))
            cand = np.array([u for u in range(64) if u != source])
            dests = sorted(int(x) for x in rng.choice(cand, m, replace=False))
            tree = alg.build_tree(mesh, source, dests)
            sched = tree.schedule(ONE_PORT)
            assert sched.check_contention().ok
            vals.append(sched.max_step)
        steps_col.append(mean(vals))
        optimal_col.append(math.ceil(math.log2(m + 1)))
    return Table(
        title=f"U-mesh stepwise, 8x8 mesh, one-port ({sets_per_point} sets/point)",
        x_label="m",
        x_values=m_values,
        columns={"umesh": steps_col, "optimal": optimal_col},
    )


def test_mesh_umesh_stepwise(benchmark, save_table):
    sets = 50 if paper_parity() else 15
    table = benchmark.pedantic(run_mesh_stepwise, args=(sets,), rounds=1)
    save_table("mesh_umesh", table)
    for measured, opt in zip(table.column("umesh"), table.column("optimal")):
        assert measured == opt, "U-mesh off the one-port staircase"
