"""Shared helpers for the benchmark harness.

Every figure bench regenerates its figure's series (fast sweep by
default; set ``REPRO_FULL=1`` for paper-parity parameters), asserts the
DESIGN.md shape criteria, prints the table, and archives it under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_table(capsys):
    """Print a Table and archive its rendering to results/<name>.txt."""

    def _save(name: str, table, precision: int = 2) -> None:
        text = table.render(precision)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _save


def paper_parity() -> bool:
    """True when REPRO_FULL requests the paper's full parameters."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false", "no")
