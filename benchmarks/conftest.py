"""Shared helpers for the benchmark harness.

Every figure bench regenerates its figure's series (fast sweep by
default; set ``REPRO_FULL=1`` for paper-parity parameters), asserts the
DESIGN.md shape criteria, prints the table, and archives it under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_table(capsys):
    """Print a Table and archive its rendering to results/<name>.txt.

    Safe under parallel workers (pytest-xdist, the sweep engine's
    process pool): directory creation tolerates concurrent creators and
    the archive is published atomically (temp file + ``os.replace``) so
    two jobs archiving the same figure never interleave partial writes.
    """

    def _save(name: str, table, precision: int = 2) -> None:
        text = table.render(precision)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=RESULTS_DIR, prefix=f".{name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(text + "\n")
            os.replace(tmp, RESULTS_DIR / f"{name}.txt")
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with capsys.disabled():
            print()
            print(text)

    return _save


def paper_parity() -> bool:
    """True when REPRO_FULL requests the paper's full parameters."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false", "no")
