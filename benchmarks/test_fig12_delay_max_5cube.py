"""Figure 12: maximum delay on the (simulated) 5-cube nCUBE-2.

The maximum-delay metric exposes U-cube's staircase directly (max delay
tracks the number of steps); the multiport algorithms smooth it.
"""

from __future__ import annotations

import math

from repro.analysis import run_experiment
from repro.analysis.shapes import check_figure

from .conftest import paper_parity


def test_fig12_delay_max_5cube(benchmark, save_table):
    table = benchmark.pedantic(
        run_experiment, args=("fig12",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("fig12", table, precision=0)

    for c in check_figure("fig12", table):
        assert c.passed, f"{c.claim}: {c.detail}"

    # staircase: U-cube max delay levels increase with ceil(log2(m+1))
    per_step: dict[int, list[float]] = {}
    for m, v in zip(table.x_values, table.column("ucube")):
        per_step.setdefault(math.ceil(math.log2(m + 1)), []).append(v)
    levels = sorted(per_step)
    means = [sum(per_step[s]) / len(per_step[s]) for s in levels]
    assert all(b > a for a, b in zip(means, means[1:])), "staircase levels not increasing"

    # W-sort strictly improves on U-cube mid-range
    mid = [i for i, m in enumerate(table.x_values) if 8 <= m <= 24]
    ucube, wsort = table.column("ucube"), table.column("wsort")
    assert sum(ucube[i] - wsort[i] for i in mid) / len(mid) > 0
