"""Figure 11: average delay on the (simulated) 5-cube nCUBE-2.

4096-byte messages, 20 random destination sets per point.  Asserts the
paper's observations: every multiport algorithm beats U-cube between
unicast and broadcast, and the anomaly that U-cube's average
*multicast* delay can exceed its *broadcast* delay (because U-cube
forces multiple messages out the same channel).
"""

from __future__ import annotations

from repro.analysis import run_experiment
from repro.analysis.shapes import check_figure

from .conftest import paper_parity


def test_fig11_delay_avg_5cube(benchmark, save_table):
    table = benchmark.pedantic(
        run_experiment, args=("fig11",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("fig11", table, precision=0)

    for c in check_figure("fig11", table):
        assert c.passed, f"{c.claim}: {c.detail}"
