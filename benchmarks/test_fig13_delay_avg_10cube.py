"""Figure 13: average delay on a simulated 10-cube.

For the larger system the paper reports that the advantage of W-sort
over the other multiport algorithms becomes visible in the average
delay; the shared shape criteria assert that ordering over the
mid-range of the sweep.
"""

from __future__ import annotations

from repro.analysis import run_experiment
from repro.analysis.shapes import check_figure

from .conftest import paper_parity


def test_fig13_delay_avg_10cube(benchmark, save_table):
    table = benchmark.pedantic(
        run_experiment, args=("fig13",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("fig13", table, precision=0)

    for c in check_figure("fig13", table):
        assert c.passed, f"{c.claim}: {c.detail}"

    # W-sort's margin over the best other multiport algorithm is positive
    xs = table.x_values
    mid = [i for i, m in enumerate(xs) if 50 <= m <= 800]
    margin = sum(
        min(table.column("maxport")[i], table.column("combine")[i])
        - table.column("wsort")[i]
        for i in mid
    ) / max(1, len(mid))
    assert margin > 0, "W-sort advantage not visible at scale"
