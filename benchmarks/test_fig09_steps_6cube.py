"""Figure 9: stepwise comparisons on a 6-cube.

Regenerates the average-of-max-steps curves for U-cube, Maxport,
Combine, and W-sort over random destination sets, and asserts the
paper's qualitative claims: the U-cube staircase, Combine/W-sort at or
below it (Maxport may exceed it slightly, Section 4.1), and the
smoothing effect.
"""

from __future__ import annotations

from repro.analysis import run_experiment
from repro.analysis.shapes import check_figure

from .conftest import paper_parity


def test_fig09_steps_6cube(benchmark, save_table):
    table = benchmark.pedantic(
        run_experiment, args=("fig9",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("fig09", table)

    for c in check_figure("fig9", table):
        assert c.passed, f"{c.claim}: {c.detail}"
