"""Bench: interference between concurrent multicasts (beyond the paper).

Collective *data distribution* rarely happens one operation at a time;
this bench measures how each algorithm's advantage holds up when k
multicasts share the network.
"""

from __future__ import annotations

from repro.analysis import run_experiment

from .conftest import paper_parity


def test_concurrent_multicasts(benchmark, save_table):
    table = benchmark.pedantic(
        run_experiment,
        args=("ablation-concurrent",),
        kwargs={"fast": not paper_parity()},
        rounds=1,
    )
    save_table("ablation_concurrent", table, precision=0)

    # delays never shrink as k grows
    for name in table.columns:
        col = table.column(name)
        assert all(b >= a * 0.98 for a, b in zip(col, col[1:]))
    # the contention-aware algorithms keep their lead at every k
    for i in range(len(table.x_values)):
        assert table.column("wsort")[i] < table.column("ucube")[i]
