"""Microbenchmarks: raw throughput of the building blocks.

These time the hot paths -- tree construction, weighted_sort, the step
scheduler, and the event simulator -- and are where pytest-benchmark's
statistics are most meaningful (the figure benches run once by design).
"""

from __future__ import annotations

import pytest

from repro.analysis.workloads import random_destination_sets
from repro.core.chains import relative_chain
from repro.multicast import ALL_PORT
from repro.multicast.registry import PAPER_ALGORITHMS, get_algorithm
from repro.multicast.wsort import weighted_sort, weighted_sort_fast
from repro.simulator import NCUBE2, simulate_multicast


@pytest.fixture(scope="module")
def workload_10cube():
    return random_destination_sets(10, 512, 1, seed=5)[0]


@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
def test_build_tree_10cube_512dests(benchmark, name, workload_10cube):
    alg = get_algorithm(name)
    tree = benchmark(alg.build_tree, 10, 0, workload_10cube)
    assert len(tree.sends) == 512


@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
def test_schedule_10cube_512dests(benchmark, name, workload_10cube):
    alg = get_algorithm(name)
    tree = alg.build_tree(10, 0, workload_10cube)
    sched = benchmark(tree.schedule, ALL_PORT)
    assert sched.max_step >= 1


def test_weighted_sort_literal(benchmark, workload_10cube):
    chain = relative_chain(0, workload_10cube)
    out = benchmark(weighted_sort, chain, 10)
    assert len(out) == len(chain)


def test_weighted_sort_fast(benchmark, workload_10cube):
    chain = relative_chain(0, workload_10cube)
    out = benchmark(weighted_sort_fast, chain, 10)
    assert out == weighted_sort(chain, 10)


def test_simulator_events_per_second(benchmark, workload_10cube):
    tree = get_algorithm("wsort").build_tree(10, 0, workload_10cube)

    def run():
        return simulate_multicast(tree, 4096, NCUBE2, ALL_PORT)

    res = benchmark(run)
    assert res.events > 1000


def test_contention_verifier_fig3(benchmark):
    tree = get_algorithm("ucube").build_tree(
        4, 0, [0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111]
    )
    sched = tree.schedule(ALL_PORT)
    report = benchmark(sched.check_contention)
    assert report.ok
