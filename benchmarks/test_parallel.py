"""Sweep-engine benchmarks: serial vs process-pool vs warm cache.

Measures the fig11 fast sweep three ways on the current machine and
asserts the engine's contract along the way: parallel and cached
tables are byte-identical to the serial one, and a warm cache serves
every simulation point (``sim.parallel.cache_hits``).  The speedup
itself is hardware-dependent (a single-core container shows pool
overhead instead of a win), so only identity and cache behavior are
asserted; the timings land in the pytest-benchmark report.
"""

from __future__ import annotations

import tempfile

from repro.analysis.experiments import run_experiment, run_sweep
from repro.obs.metrics import MetricsRegistry

from .conftest import paper_parity


def _fast() -> bool:
    return not paper_parity()


def test_fig11_serial(benchmark):
    table = benchmark.pedantic(
        run_experiment, args=("fig11",), kwargs={"fast": _fast()}, rounds=1
    )
    assert table.rows


def test_fig11_parallel_cold(benchmark):
    serial = run_experiment("fig11", fast=_fast())
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        table = benchmark.pedantic(
            run_experiment,
            args=("fig11",),
            kwargs={"fast": _fast(), "jobs": 4, "cache_dir": cache_dir},
            rounds=1,
        )
    assert table.to_json() == serial.to_json()


def test_fig11_warm_cache(benchmark):
    serial = run_experiment("fig11", fast=_fast())
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        run_experiment("fig11", fast=_fast(), jobs=2, cache_dir=cache_dir)

        registry = MetricsRegistry()

        def warm():
            return run_sweep(
                ["fig11"],
                fast=_fast(),
                jobs=2,
                cache_dir=cache_dir,
                metrics=registry,
            )["fig11"]

        table = benchmark.pedantic(warm, rounds=1)
    assert table.to_json() == serial.to_json()
    snap = registry.snapshot()
    assert snap["sim.parallel.cache_hits"]["value"] > 0
    assert snap["sim.parallel.worker_failures"]["value"] == 0
