"""Figure 10: stepwise comparisons on a 10-cube (larger system).

The paper's point: the advantage of the all-port algorithms persists
and widens at scale -- W-sort saves more than a full step on average
over the mid-range of the sweep.
"""

from __future__ import annotations

from repro.analysis import run_experiment
from repro.analysis.shapes import check_figure

from .conftest import paper_parity


def test_fig10_steps_10cube(benchmark, save_table):
    table = benchmark.pedantic(
        run_experiment, args=("fig10",), kwargs={"fast": not paper_parity()}, rounds=1
    )
    save_table("fig10", table)

    for c in check_figure("fig10", table):
        assert c.passed, f"{c.claim}: {c.detail}"
